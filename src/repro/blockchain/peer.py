"""Blockchain peers: execute, vote, commit, synchronise.

The paper's workflow (§4): the platform "(a) leverages an ordering
service to determine the order of transactions …, (b) generates a block
containing the ordered transactions, and (c) sends it to all peers for
validation.  The peers then execute these transactions in order locally
…, and vote for consensus on each event following which they update
their copy of the ledger."

Event validation therefore has two stages (§6, Optimizations):

1. **peer consensus** — execute the block, exchange per-transaction
   votes, commit once the consensus policy is decided for every
   transaction in the block;
2. **ledger synchronisation** — exchange post-commit state hashes; a
   transaction's status only becomes observable to clients once a
   majority of peers report the same state hash.

Each peer serialises its CPU work (signature checks, contract
execution, vote and sync-hash processing) on a single simulated core.
Because every peer must process one vote and one sync hash from every
other peer per block, per-block CPU grows linearly with the peer count
— the mechanistic root of the paper's latency growth in Fig. 3c.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..simnet.topology import Host
from .block import Block
from .config import FabricConfig
from .contracts import Contract, execute_transaction
from .execution import make_executor
from .identity import Identity, MembershipProvider
from .ledger import Ledger, TxExecution
from .messages import (
    DeliverBlock,
    QueryTxStatus,
    RequestBlocks,
    SyncHashMsg,
    TxStatusReply,
    VoteMsg,
)
from .policy import ConsensusPolicy
from .state import WorldStateOverlay
from .transaction import Transaction, TxValidationCode

__all__ = ["Peer"]


class Peer(Host):
    """One blockchain peer (a player's network entity, §4.2)."""

    def __init__(
        self,
        name: str,
        region: str,
        identity: Identity,
        msp: MembershipProvider,
        genesis: Block,
        policy: ConsensusPolicy,
        config: Optional[FabricConfig] = None,
    ):
        super().__init__(name, region)
        self.identity = identity
        self.msp = msp
        self.policy = policy
        self.config = config if config is not None else FabricConfig()
        self.ledger = Ledger(genesis)
        self.contracts: Dict[str, Contract] = {}
        #: Block-validation strategy (serial or lane-parallel), selected
        #: by ``FabricConfig``; see :mod:`repro.blockchain.execution`.
        self.executor = make_executor(self.config)

        self._electorate: List[str] = [name]
        self._peers: List[Host] = []
        self.orderer: Optional[Host] = None  # for gap-recovery requests

        self._pending_blocks: Dict[int, Block] = {}
        self._executions: Dict[int, List[TxExecution]] = {}
        self._votes: Dict[int, Dict[str, Tuple[bool, ...]]] = {}
        #: Incremental per-block tally: one ``[yes, cast]`` pair per tx
        #: index, maintained by _record_vote so _try_commit's majority
        #: fast path is O(txs) per call instead of O(txs × votes).
        self._vote_tally: Dict[int, List[List[int]]] = {}
        self._sync_hashes: Dict[int, Dict[str, str]] = {}
        #: Incremental per-block count of recorded sync hashes by value,
        #: mirroring _sync_hashes for O(1) quorum checks in _try_sync.
        self._sync_match: Dict[int, Dict[str, int]] = {}
        self._own_hash: Dict[int, str] = {}

        self._executed_height = 0
        self._committed_height = 0
        self._synced_height = 0
        self._executing = False
        self._commit_scheduled: Set[int] = set()
        self._cpu_free_at = 0.0
        self._sync_free_at = 0.0
        # Process generation: bumped on crash so that callbacks scheduled
        # by the previous incarnation are dropped instead of resurrecting
        # state that died with the process.
        self._generation = 0
        # Anti-entropy retransmission state (see FabricConfig.anti_entropy_ms).
        self._retry_timer = None
        self._retry_attempts = 0
        self._retry_marker: Tuple[int, int, int] = (0, 0, 0)
        # Catch-up state: blocks below this height were finalised by the
        # rest of the network while we were unreachable; they commit from
        # local (deterministic) execution without a fresh vote round.
        self._catch_up_below = 0
        self._backfill_requested_to = 0
        # Own per-block attestations, kept after commit so stale vote /
        # sync-hash messages from a lagging peer can be answered (the
        # return half of anti-entropy: re-broadcasting alone cannot
        # rebuild a quorum whose other attestations were dropped).
        self._vote_history: Dict[int, Tuple[bool, ...]] = {}
        self._state_hash_history: Dict[int, str] = {}

        #: Set when consensus contradicted this peer's own execution —
        #: either the peer is faulty or it is being equivocated against.
        self.diverged = False
        #: sim-time each block became synchronised (for latency metrics).
        self.block_synced_at: Dict[int, float] = {}
        self.on_block_synced: Optional[Callable[[int, Block], None]] = None
        #: Optional :class:`repro.telemetry.Telemetry`; every hook site
        #: guards on ``is not None``, keeping disabled runs cost-free.
        self.telemetry = None

    # ------------------------------------------------------------------
    # setup

    def install_contract(self, contract: Contract) -> None:
        """Install a smart contract (done by the initiator shim, §4.2.2)."""
        self.contracts[contract.name] = contract

    def connect_peers(self, peers: List["Peer"]) -> None:
        """Declare the full electorate.  ``peers`` includes this peer."""
        self._electorate = [p.name for p in peers]
        self._peers = [p for p in peers if p.name != self.name]

    @property
    def electorate_size(self) -> int:
        return len(self._electorate)

    @property
    def synced_height(self) -> int:
        return self._synced_height

    @property
    def committed_height(self) -> int:
        return self._committed_height

    # ------------------------------------------------------------------
    # crash / restart (chaos churn)

    def crash(self) -> None:
        """Simulated process crash: the host drops off the network and all
        volatile state — pending blocks, votes, sync hashes, in-flight CPU
        work — is lost.  The ledger survives (it is the on-disk part of a
        real peer).  Call :meth:`restart` to boot again."""
        self._generation += 1  # orphan every scheduled callback
        self._pending_blocks.clear()
        self._executions.clear()
        self._votes.clear()
        self._vote_tally.clear()
        self._sync_hashes.clear()
        self._sync_match.clear()
        self._own_hash.clear()
        self._commit_scheduled.clear()
        self._executing = False
        self._cpu_free_at = 0.0
        self._sync_free_at = 0.0
        self._catch_up_below = 0
        self._backfill_requested_to = 0
        self._retry_timer = None
        self._retry_attempts = 0
        # Attestations for committed blocks are derived from the durable
        # ledger and survive; anything above it died with the process.
        durable = self.ledger.height - 1
        self._vote_history = {
            n: v for n, v in self._vote_history.items() if n <= durable
        }
        if self.network is not None:
            self.network.condition(self.name).down = True

    def restart(self) -> None:
        """Boot after :meth:`crash`: volatile heights are recomputed from
        the durable ledger and the host rejoins the network.  Blocks the
        rest of the network finalised while we were down are recovered by
        gap detection on the next delivery."""
        committed = self.ledger.height - 1
        self._committed_height = committed
        self._executed_height = committed
        # Sync attestations for committed-but-unsynced blocks died with
        # the process; the durable ledger is authoritative for them, the
        # same trust catch-up extends to blocks finalised network-wide.
        self._synced_height = committed
        if self.network is not None:
            self.network.condition(self.name).down = False

    # ------------------------------------------------------------------
    # CPU model

    def _compute(self, cost_ms: float, fn: Callable, *args) -> None:
        """Run ``fn`` after ``cost_ms`` of serialised CPU time."""
        sched = self.network.scheduler
        start = sched._now
        if self._cpu_free_at > start:
            start = self._cpu_free_at
        done = start + cost_ms
        self._cpu_free_at = done
        # Inlined Scheduler.call_at_anon (same seq counter, one fewer
        # Python call on the busiest peer path; done >= now always).
        seq = sched._seq
        sched._seq = seq + 1
        heappush(
            sched._queue, (done, seq, self._run_if_alive, (self._generation, fn) + args)
        )
        sched._live += 1

    def _run_if_alive(self, generation: int, fn: Callable, *args) -> None:
        """Drop callbacks scheduled before a crash: that work died with
        the process."""
        if generation == self._generation:
            fn(*args)

    # ------------------------------------------------------------------
    # message handling

    def handle_message(self, src: Host, payload) -> None:
        # Exact-type dispatch ordered by frequency: at N peers the vote
        # and sync-hash gossip is O(N²) per block while deliveries are
        # O(N) — the two hot arms go first.
        kind = type(payload)
        if kind is VoteMsg or kind is SyncHashMsg:
            # _compute + Scheduler.call_at_anon, inlined: this pair of
            # arms fires O(N²) times per block and the two saved Python
            # calls per message are measurable at 32 peers.
            if kind is VoteMsg:
                cost = self.config.vote_verify_ms
                fn = self._on_vote
            else:
                cost = self.config.sync_verify_ms
                fn = self._on_sync_hash
            sched = self.network.scheduler
            start = sched._now
            if self._cpu_free_at > start:
                start = self._cpu_free_at
            done = start + cost
            self._cpu_free_at = done
            seq = sched._seq
            sched._seq = seq + 1
            heappush(
                sched._queue,
                (done, seq, self._run_if_alive, (self._generation, fn, src, payload)),
            )
            sched._live += 1
        elif kind is DeliverBlock:
            self._on_block(payload.block)
        elif kind is QueryTxStatus:
            self._on_query(src, payload)
        else:
            raise TypeError(f"peer cannot handle {type(payload).__name__}")

    # ------------------------------------------------------------------
    # stage 1: execute + vote

    def _on_block(self, block: Block) -> None:
        if block.number <= self._committed_height:
            return  # duplicate delivery
        if self.telemetry is not None and block.number not in self._pending_blocks:
            self.telemetry.block_delivered(self.name, block)
        self._pending_blocks.setdefault(block.number, block)
        self._retry_attempts = 0  # fresh information restarts the retry budget
        self._detect_gap(block.number)
        self._maybe_execute()
        # A delivery can unblock the commit of an *older* executed block:
        # _detect_gap may have just raised _catch_up_below past it, turning
        # a vote quorum that will never arrive into a catch-up commit.
        self._try_commit(self._committed_height + 1)
        self._ensure_anti_entropy()

    def _detect_gap(self, delivered: int) -> None:
        """A delivery with *missing predecessors* means we missed
        deliveries while unreachable (e.g. DDoSed): request the range
        from the ordering service and mark it finalised-elsewhere.

        Ordinary pipelining — block n+1 arriving while block n is still
        executing or collecting votes — is NOT a gap: those blocks are
        buffered in ``_pending_blocks`` and commit normally.
        """
        nxt = self._committed_height + 1
        missing = [
            n
            for n in range(nxt, delivered)
            if n not in self._pending_blocks and n > self._executed_height
        ]
        if not missing:
            return
        self._catch_up_below = max(self._catch_up_below, delivered)
        if self.orderer is None:
            return
        if max(missing) <= self._backfill_requested_to:
            return  # already asked
        self._backfill_requested_to = max(missing)
        self.send(
            self.orderer,
            RequestBlocks(from_number=min(missing), to_number=max(missing)),
            size_bytes=self.config.query_msg_bytes,
        )

    def _maybe_execute(self) -> None:
        nxt = self._executed_height + 1
        if self._executing or nxt not in self._pending_blocks:
            return
        if self._committed_height < nxt - 1:
            return  # contract state basis for block n is block n-1's commit
        block = self._pending_blocks[nxt]
        self._executing = True
        cost = len(block.transactions) * (
            self.config.exec_ms_per_tx + self.config.sig_verify_ms
        )
        self._compute(cost, self._finish_execute, block)

    def _finish_execute(self, block: Block) -> None:
        # Strategy-pluggable execution (serial loop or planner-guided
        # lanes, possibly sharing results across peers); whichever
        # strategy runs, the executions are bit-identical to the in-order
        # loop over one speculative overlay — see
        # :mod:`repro.blockchain.execution` for the determinism argument.
        executions = self.executor.execute_block(self, block)
        self._executions[block.number] = executions
        self._executed_height = block.number
        self._executing = False
        if self.telemetry is not None:
            # Execution ends exactly now; its serialised CPU cost is the
            # same figure _maybe_execute scheduled us with.
            cost = len(block.transactions) * (
                self.config.exec_ms_per_tx + self.config.sig_verify_ms
            )
            self.telemetry.block_executed(self.name, block, cost)

        votes = tuple(e.code == TxValidationCode.VALID for e in executions)
        self._vote_history[block.number] = votes
        self._record_vote(
            VoteMsg(block_number=block.number, voter=self.name, votes=votes)
        )
        msg = VoteMsg(block_number=block.number, voter=self.name, votes=votes)
        self.send_many(self._peers, msg, size_bytes=self.config.vote_msg_bytes)
        self._try_commit(block.number)
        self._ensure_anti_entropy()

    def _execute_one(
        self,
        tx: Transaction,
        overlay: "WorldStateOverlay",
        written: Set[str],
        sig_checked: bool = False,
    ) -> TxExecution:
        # ``sig_checked=True`` means the executor already resolved the
        # certificate and endorsement signatures for the whole block in
        # one batched pass; instance-patched peers (chaos fixtures) keep
        # the historical 3-argument call and check inline here.
        if self.config.verify_signatures and not sig_checked:
            if not self.msp.validate(tx.certificate):
                return TxExecution(rwset=_empty_rwset(), code=TxValidationCode.BAD_CERTIFICATE)
            if not tx.verify_signature():
                return TxExecution(rwset=_empty_rwset(), code=TxValidationCode.BAD_SIGNATURE)
        contract = self.contracts.get(tx.proposal.contract)
        if contract is None:
            return TxExecution(rwset=_empty_rwset(), code=TxValidationCode.UNKNOWN_CONTRACT)
        execution = execute_transaction(contract, tx, self.ledger.state, overlay=overlay)
        if execution.code != TxValidationCode.VALID:
            return execution
        # Block-level KVS lock: conflict with an earlier tx in this block
        # invalidates this one (the ledger re-checks at commit; voting the
        # same verdict keeps honest peers unanimous).
        touched = set(execution.rwset.touched())
        if touched & written:
            return TxExecution(rwset=execution.rwset, code=TxValidationCode.MVCC_READ_CONFLICT)
        return execution

    #: The pristine execution hook, recorded at class-creation time so the
    #: executor layer can detect instance- or subclass-patched peers
    #: (chaos buggy fixtures) without a peer → execution import cycle;
    #: see ``execution._is_patched``.
    _baseline_execute_one = _execute_one

    # ------------------------------------------------------------------
    # stage 1b: vote collection + commit

    def _on_vote(self, src: Host, msg: VoteMsg) -> None:
        if msg.block_number <= self._committed_height:
            # The sender is behind: it re-broadcast its vote because the
            # quorum it is waiting for was lost in transit.  Answer with
            # our recorded vote for that block so the quorum can re-form.
            own = self._vote_history.get(msg.block_number)
            if own is not None and not msg.is_reply and msg.voter != self.name:
                self.send(
                    src,
                    VoteMsg(
                        block_number=msg.block_number, voter=self.name,
                        votes=own, is_reply=True,
                    ),
                    size_bytes=self.config.vote_msg_bytes,
                )
            return
        self._record_vote(msg)
        self._try_commit(msg.block_number)

    def _record_vote(self, msg: VoteMsg) -> None:
        if msg.voter not in self._electorate:
            return  # not part of this game session
        if msg.block_number <= self._committed_height:
            return  # already committed; late vote
        by_peer = self._votes.get(msg.block_number)
        if by_peer is None:
            by_peer = self._votes[msg.block_number] = {}
        votes = msg.votes
        old = by_peer.get(msg.voter)
        if old == votes:
            return  # duplicate (anti-entropy re-broadcast): tally unchanged
        by_peer[msg.voter] = votes
        # Maintain the running per-tx [yes, cast] tally (overwrite-aware:
        # a voter re-voting differently first backs out its old ballot).
        tally = self._vote_tally.get(msg.block_number)
        if tally is None:
            tally = self._vote_tally[msg.block_number] = []
        while len(tally) < len(votes):
            tally.append([0, 0])
        if old is not None:
            for i, vote in enumerate(old):
                pair = tally[i]
                pair[1] -= 1
                if vote:
                    pair[0] -= 1
        for i, vote in enumerate(votes):
            pair = tally[i]
            pair[1] += 1
            if vote:
                pair[0] += 1

    def _try_commit(self, block_number: int) -> None:
        nxt = self._committed_height + 1
        if block_number != nxt or self._executed_height < nxt:
            return
        if nxt in self._commit_scheduled:
            return
        block = self._pending_blocks.get(nxt)
        executions = self._executions.get(nxt)
        if block is None or executions is None:
            return

        if nxt < self._catch_up_below:
            # Catch-up: the network finalised this block without us.
            # Deterministic re-execution yields the consensus outcome.
            decisions: List[Optional[bool]] = [
                e.code == TxValidationCode.VALID for e in executions
            ]
        else:
            total = len(self._electorate)
            votes_by_peer = self._votes.get(nxt, {})
            decisions = []
            if self.policy.is_simple_majority:
                # Count-based fast path over the incremental tally kept by
                # _record_vote: voters are already filtered to the
                # electorate there, so the running [yes, cast] pairs equal
                # the per-tx counts a full re-tally would produce — and
                # this runs once per vote received per pending block.
                tally = self._vote_tally.get(nxt, [])
                n_tally = len(tally)
                for i in range(len(block.transactions)):
                    if i < n_tally:
                        yes, cast = tally[i]
                    else:
                        yes = cast = 0
                    decisions.append(self.policy.decided_counts(yes, cast, total))
            else:
                for i in range(len(block.transactions)):
                    per_tx = {
                        voter: votes[i]
                        for voter, votes in votes_by_peer.items()
                        if i < len(votes)
                    }
                    decisions.append(
                        self.policy.decided(per_tx, total, all_voters=self._electorate)
                    )
            if any(d is None for d in decisions):
                return  # consensus still open for some transaction

        for execution, decision in zip(executions, decisions):
            locally_valid = execution.code == TxValidationCode.VALID
            if decision and not locally_valid:
                self.diverged = True  # consensus accepted what we rejected
            elif not decision and locally_valid:
                execution.code = TxValidationCode.CONSENSUS_NOT_REACHED

        if self.telemetry is not None:
            self.telemetry.block_decided(self.name, block)
        self._commit_scheduled.add(block.number)
        cost = self.config.commit_ms_per_tx * len(block.transactions)
        self._compute(cost, self._finish_commit, block, executions)

    def _finish_commit(self, block: Block, executions: List[TxExecution]) -> None:
        if block.number != self._committed_height + 1:
            return  # stale double-commit attempt
        codes = self.ledger.append(block, executions)
        self._committed_height = block.number
        if self.telemetry is not None:
            self.telemetry.block_committed(self.name, block, codes)
        self._pending_blocks.pop(block.number, None)
        self._votes.pop(block.number, None)
        self._vote_tally.pop(block.number, None)
        self._commit_scheduled.discard(block.number)

        # stage 2: ledger synchronisation.  State transfer runs on the
        # gossip plane, separate from the CPU, but transfers one block at
        # a time — which is why the paper's block-size optimisation
        # "amortizes the cost of ledger synchronization across the
        # transactions in a block" (§6): five single-tx blocks queue for
        # five transfers, one five-tx block pays for one.
        state_hash = self.ledger.state_hash()
        self._state_hash_history[block.number] = state_hash
        transfer = (
            self.config.sync_base_ms
            + self.config.sync_per_peer_ms * len(self._electorate)
        )
        sched = self.network.scheduler
        start = max(sched.now, self._sync_free_at)
        done = start + transfer
        self._sync_free_at = done
        sched.call_at_anon(
            done, self._run_if_alive, self._generation,
            self._announce_sync, block.number, state_hash,
        )

        # Execution of the next block can now proceed.
        self._maybe_execute()

    def _announce_sync(self, block_number: int, state_hash: str) -> None:
        self._own_hash[block_number] = state_hash
        msg = SyncHashMsg(
            block_number=block_number, sender=self.name, state_hash=state_hash
        )
        self._record_sync_hash(msg)
        self.send_many(self._peers, msg, size_bytes=self.config.sync_msg_bytes)
        self._try_sync(block_number)
        self._ensure_anti_entropy()

    # ------------------------------------------------------------------
    # stage 2: ledger synchronisation

    def _on_sync_hash(self, src: Host, msg: SyncHashMsg) -> None:
        if msg.block_number <= self._synced_height:
            # Same return half as for votes: a lagging sender needs our
            # attestation for a height we already left behind.
            own = self._state_hash_history.get(msg.block_number)
            if own is not None and not msg.is_reply and msg.sender != self.name:
                self.send(
                    src,
                    SyncHashMsg(
                        block_number=msg.block_number, sender=self.name,
                        state_hash=own, is_reply=True,
                    ),
                    size_bytes=self.config.sync_msg_bytes,
                )
            return
        self._record_sync_hash(msg)
        self._try_sync(msg.block_number)

    def _record_sync_hash(self, msg: SyncHashMsg) -> None:
        if msg.sender not in self._electorate:
            return
        if msg.block_number <= self._synced_height:
            return  # already synchronised; late hash
        by_sender = self._sync_hashes.get(msg.block_number)
        if by_sender is None:
            by_sender = self._sync_hashes[msg.block_number] = {}
        old = by_sender.get(msg.sender)
        if old == msg.state_hash:
            return  # duplicate (anti-entropy re-broadcast): counts unchanged
        by_sender[msg.sender] = msg.state_hash
        # Running count of attestations by hash value (overwrite-aware),
        # so _try_sync's quorum check is one dict get, not a scan.
        counts = self._sync_match.get(msg.block_number)
        if counts is None:
            counts = self._sync_match[msg.block_number] = {}
        if old is not None:
            counts[old] -= 1
        counts[msg.state_hash] = counts.get(msg.state_hash, 0) + 1

    def _try_sync(self, block_number: int) -> None:
        nxt = self._synced_height + 1
        while True:
            if nxt > self._committed_height or nxt not in self._own_hash:
                return
            own = self._own_hash[nxt]
            counts = self._sync_match.get(nxt)
            matching = counts.get(own, 0) if counts is not None else 0
            if matching * 2 <= len(self._electorate) and nxt >= self._catch_up_below:
                return  # (catch-up blocks were synchronised network-wide
                #          already; no fresh quorum will form for them)
            self._synced_height = nxt
            self.block_synced_at[nxt] = self.network.scheduler.now
            if self.telemetry is not None:
                self.telemetry.block_synced(self.name, nxt)
            self._sync_hashes.pop(nxt, None)
            self._sync_match.pop(nxt, None)
            self._own_hash.pop(nxt, None)
            synced_block = self.ledger.block(nxt)
            if self.on_block_synced is not None:
                self.on_block_synced(nxt, synced_block)
            nxt = self._synced_height + 1

    # ------------------------------------------------------------------
    # anti-entropy retransmission

    def _outstanding_work(self) -> bool:
        """True while consensus work is unfinished at this peer: a block
        awaiting votes, a sync hash awaiting quorum, or a delivery gap."""
        return bool(
            self._pending_blocks
            or self._own_hash
            or self._committed_height + 1 < self._catch_up_below
        )

    def _ensure_anti_entropy(self) -> None:
        if self.config.anti_entropy_ms <= 0 or not self._outstanding_work():
            return
        if self._retry_timer is not None and self._retry_timer.active:
            return
        self._retry_timer = self.network.scheduler.call_after(
            self.config.anti_entropy_ms,
            self._run_if_alive, self._generation, self._anti_entropy,
        )

    def _anti_entropy(self) -> None:
        """Re-broadcast whatever this peer is still waiting on.

        Votes and sync hashes are sent exactly once on the happy path; a
        dropped copy would otherwise stall consensus forever.  Retries
        stop after ``anti_entropy_max_retries`` rounds without progress
        (committed/synced/executed heights all unchanged) so that a dead
        quorum still lets the simulation quiesce; any fresh delivery
        resets the budget.
        """
        self._retry_timer = None
        if not self._outstanding_work():
            self._retry_attempts = 0
            return
        marker = (self._committed_height, self._synced_height, self._executed_height)
        if marker != self._retry_marker:
            self._retry_marker = marker
            self._retry_attempts = 0
        if self._retry_attempts >= self.config.anti_entropy_max_retries:
            return
        self._retry_attempts += 1

        # Local re-attempts first: execution or commit may merely be
        # stalled (e.g. the commit path switched to catch-up after the
        # last _try_commit ran), needing no network round-trip at all.
        self._maybe_execute()
        self._try_commit(self._committed_height + 1)

        nxt = self._committed_height + 1
        own_votes = self._votes.get(nxt, {}).get(self.name)
        if own_votes is not None:
            msg = VoteMsg(block_number=nxt, voter=self.name, votes=own_votes)
            self.send_many(self._peers, msg, size_bytes=self.config.vote_msg_bytes)
        to_sync = self._synced_height + 1
        if to_sync <= self._committed_height and to_sync in self._own_hash:
            msg = SyncHashMsg(
                block_number=to_sync, sender=self.name,
                state_hash=self._own_hash[to_sync],
            )
            self.send_many(self._peers, msg, size_bytes=self.config.sync_msg_bytes)
        missing = [
            n
            for n in range(nxt, self._catch_up_below)
            if n not in self._pending_blocks and n > self._executed_height
        ]
        if missing and self.orderer is not None:
            self.send(
                self.orderer,
                RequestBlocks(from_number=min(missing), to_number=max(missing)),
                size_bytes=self.config.query_msg_bytes,
            )
        self._ensure_anti_entropy()

    # ------------------------------------------------------------------
    # client queries

    def _on_query(self, src: Host, query: QueryTxStatus) -> None:
        code, block = self.ledger.tx_status(query.tx_id)
        if block is not None and block > self._synced_height:
            code, block = TxValidationCode.PENDING, None
        reply = TxStatusReply(tx_id=query.tx_id, code=code, block=block)
        self.send(src, reply, size_bytes=self.config.query_msg_bytes)


def _empty_rwset():
    from .transaction import RWSet

    return RWSet()
