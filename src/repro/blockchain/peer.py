"""Blockchain peers: execute, vote, commit, synchronise.

The paper's workflow (§4): the platform "(a) leverages an ordering
service to determine the order of transactions …, (b) generates a block
containing the ordered transactions, and (c) sends it to all peers for
validation.  The peers then execute these transactions in order locally
…, and vote for consensus on each event following which they update
their copy of the ledger."

Event validation therefore has two stages (§6, Optimizations):

1. **peer consensus** — execute the block, exchange per-transaction
   votes, commit once the consensus policy is decided for every
   transaction in the block;
2. **ledger synchronisation** — exchange post-commit state hashes; a
   transaction's status only becomes observable to clients once a
   majority of peers report the same state hash.

Each peer serialises its CPU work (signature checks, contract
execution, vote and sync-hash processing) on a single simulated core.
Because every peer must process one vote and one sync hash from every
other peer per block, per-block CPU grows linearly with the peer count
— the mechanistic root of the paper's latency growth in Fig. 3c.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..simnet.topology import Host
from .block import Block
from .config import FabricConfig
from .contracts import Contract, execute_transaction
from .identity import Identity, MembershipProvider
from .ledger import Ledger, TxExecution
from .messages import (
    DeliverBlock,
    QueryTxStatus,
    RequestBlocks,
    SyncHashMsg,
    TxStatusReply,
    VoteMsg,
)
from .policy import ConsensusPolicy
from .transaction import Transaction, TxValidationCode

__all__ = ["Peer"]


class Peer(Host):
    """One blockchain peer (a player's network entity, §4.2)."""

    def __init__(
        self,
        name: str,
        region: str,
        identity: Identity,
        msp: MembershipProvider,
        genesis: Block,
        policy: ConsensusPolicy,
        config: Optional[FabricConfig] = None,
    ):
        super().__init__(name, region)
        self.identity = identity
        self.msp = msp
        self.policy = policy
        self.config = config if config is not None else FabricConfig()
        self.ledger = Ledger(genesis)
        self.contracts: Dict[str, Contract] = {}

        self._electorate: List[str] = [name]
        self._peers: List[Host] = []
        self.orderer: Optional[Host] = None  # for gap-recovery requests

        self._pending_blocks: Dict[int, Block] = {}
        self._executions: Dict[int, List[TxExecution]] = {}
        self._votes: Dict[int, Dict[str, Tuple[bool, ...]]] = {}
        self._sync_hashes: Dict[int, Dict[str, str]] = {}
        self._own_hash: Dict[int, str] = {}

        self._executed_height = 0
        self._committed_height = 0
        self._synced_height = 0
        self._executing = False
        self._commit_scheduled: Set[int] = set()
        self._cpu_free_at = 0.0
        self._sync_free_at = 0.0
        # Catch-up state: blocks below this height were finalised by the
        # rest of the network while we were unreachable; they commit from
        # local (deterministic) execution without a fresh vote round.
        self._catch_up_below = 0
        self._backfill_requested_to = 0

        #: Set when consensus contradicted this peer's own execution —
        #: either the peer is faulty or it is being equivocated against.
        self.diverged = False
        #: sim-time each block became synchronised (for latency metrics).
        self.block_synced_at: Dict[int, float] = {}
        self.on_block_synced: Optional[Callable[[int, Block], None]] = None

    # ------------------------------------------------------------------
    # setup

    def install_contract(self, contract: Contract) -> None:
        """Install a smart contract (done by the initiator shim, §4.2.2)."""
        self.contracts[contract.name] = contract

    def connect_peers(self, peers: List["Peer"]) -> None:
        """Declare the full electorate.  ``peers`` includes this peer."""
        self._electorate = [p.name for p in peers]
        self._peers = [p for p in peers if p.name != self.name]

    @property
    def electorate_size(self) -> int:
        return len(self._electorate)

    @property
    def synced_height(self) -> int:
        return self._synced_height

    @property
    def committed_height(self) -> int:
        return self._committed_height

    # ------------------------------------------------------------------
    # CPU model

    def _compute(self, cost_ms: float, fn: Callable, *args) -> None:
        """Run ``fn`` after ``cost_ms`` of serialised CPU time."""
        sched = self.network.scheduler
        start = max(sched.now, self._cpu_free_at)
        done = start + cost_ms
        self._cpu_free_at = done
        sched.call_at(done, fn, *args)

    # ------------------------------------------------------------------
    # message handling

    def handle_message(self, src: Host, payload) -> None:
        if isinstance(payload, DeliverBlock):
            self._on_block(payload.block)
        elif isinstance(payload, VoteMsg):
            self._compute(self.config.vote_verify_ms, self._on_vote, payload)
        elif isinstance(payload, SyncHashMsg):
            self._compute(self.config.sync_verify_ms, self._on_sync_hash, payload)
        elif isinstance(payload, QueryTxStatus):
            self._on_query(src, payload)
        else:
            raise TypeError(f"peer cannot handle {type(payload).__name__}")

    # ------------------------------------------------------------------
    # stage 1: execute + vote

    def _on_block(self, block: Block) -> None:
        if block.number <= self._committed_height:
            return  # duplicate delivery
        self._pending_blocks.setdefault(block.number, block)
        self._detect_gap(block.number)
        self._maybe_execute()

    def _detect_gap(self, delivered: int) -> None:
        """A delivery with *missing predecessors* means we missed
        deliveries while unreachable (e.g. DDoSed): request the range
        from the ordering service and mark it finalised-elsewhere.

        Ordinary pipelining — block n+1 arriving while block n is still
        executing or collecting votes — is NOT a gap: those blocks are
        buffered in ``_pending_blocks`` and commit normally.
        """
        nxt = self._committed_height + 1
        missing = [
            n
            for n in range(nxt, delivered)
            if n not in self._pending_blocks and n > self._executed_height
        ]
        if not missing:
            return
        self._catch_up_below = max(self._catch_up_below, delivered)
        if self.orderer is None:
            return
        if max(missing) <= self._backfill_requested_to:
            return  # already asked
        self._backfill_requested_to = max(missing)
        self.send(
            self.orderer,
            RequestBlocks(from_number=min(missing), to_number=max(missing)),
            size_bytes=self.config.query_msg_bytes,
        )

    def _maybe_execute(self) -> None:
        nxt = self._executed_height + 1
        if self._executing or nxt not in self._pending_blocks:
            return
        if self._committed_height < nxt - 1:
            return  # contract state basis for block n is block n-1's commit
        block = self._pending_blocks[nxt]
        self._executing = True
        cost = len(block.transactions) * (
            self.config.exec_ms_per_tx + self.config.sig_verify_ms
        )
        self._compute(cost, self._finish_execute, block)

    def _finish_execute(self, block: Block) -> None:
        executions: List[TxExecution] = []
        overlay: Dict[str, object] = {}
        written: Set[str] = set()
        for tx in block.transactions:
            execution = self._execute_one(tx, overlay, written)
            executions.append(execution)
            if execution.code == TxValidationCode.VALID:
                for key, value in execution.rwset.writes:
                    overlay[key] = value
                    written.add(key)
        self._executions[block.number] = executions
        self._executed_height = block.number
        self._executing = False

        votes = tuple(e.code == TxValidationCode.VALID for e in executions)
        self._record_vote(
            VoteMsg(block_number=block.number, voter=self.name, votes=votes)
        )
        msg = VoteMsg(block_number=block.number, voter=self.name, votes=votes)
        for peer in self._peers:
            self.send(peer, msg, size_bytes=self.config.vote_msg_bytes)
        self._try_commit(block.number)

    def _execute_one(
        self, tx: Transaction, overlay: Dict[str, object], written: Set[str]
    ) -> TxExecution:
        if self.config.verify_signatures:
            if not self.msp.validate(tx.certificate):
                return TxExecution(rwset=_empty_rwset(), code=TxValidationCode.BAD_CERTIFICATE)
            if not tx.verify_signature():
                return TxExecution(rwset=_empty_rwset(), code=TxValidationCode.BAD_SIGNATURE)
        contract = self.contracts.get(tx.proposal.contract)
        if contract is None:
            return TxExecution(rwset=_empty_rwset(), code=TxValidationCode.UNKNOWN_CONTRACT)
        execution = execute_transaction(contract, tx, self.ledger.state, overlay=overlay)
        if execution.code != TxValidationCode.VALID:
            return execution
        # Block-level KVS lock: conflict with an earlier tx in this block
        # invalidates this one (the ledger re-checks at commit; voting the
        # same verdict keeps honest peers unanimous).
        touched = set(execution.rwset.touched())
        if touched & written:
            return TxExecution(rwset=execution.rwset, code=TxValidationCode.MVCC_READ_CONFLICT)
        return execution

    # ------------------------------------------------------------------
    # stage 1b: vote collection + commit

    def _on_vote(self, msg: VoteMsg) -> None:
        self._record_vote(msg)
        self._try_commit(msg.block_number)

    def _record_vote(self, msg: VoteMsg) -> None:
        if msg.voter not in self._electorate:
            return  # not part of this game session
        if msg.block_number <= self._committed_height:
            return  # already committed; late vote
        self._votes.setdefault(msg.block_number, {})[msg.voter] = msg.votes

    def _try_commit(self, block_number: int) -> None:
        nxt = self._committed_height + 1
        if block_number != nxt or self._executed_height < nxt:
            return
        if nxt in self._commit_scheduled:
            return
        block = self._pending_blocks.get(nxt)
        executions = self._executions.get(nxt)
        if block is None or executions is None:
            return

        if nxt < self._catch_up_below:
            # Catch-up: the network finalised this block without us.
            # Deterministic re-execution yields the consensus outcome.
            decisions: List[Optional[bool]] = [
                e.code == TxValidationCode.VALID for e in executions
            ]
        else:
            total = len(self._electorate)
            votes_by_peer = self._votes.get(nxt, {})
            decisions = []
            for i in range(len(block.transactions)):
                per_tx = {
                    voter: votes[i]
                    for voter, votes in votes_by_peer.items()
                    if i < len(votes)
                }
                decisions.append(
                    self.policy.decided(per_tx, total, all_voters=self._electorate)
                )
            if any(d is None for d in decisions):
                return  # consensus still open for some transaction

        for execution, decision in zip(executions, decisions):
            locally_valid = execution.code == TxValidationCode.VALID
            if decision and not locally_valid:
                self.diverged = True  # consensus accepted what we rejected
            elif not decision and locally_valid:
                execution.code = TxValidationCode.CONSENSUS_NOT_REACHED

        self._commit_scheduled.add(block.number)
        cost = self.config.commit_ms_per_tx * len(block.transactions)
        self._compute(cost, self._finish_commit, block, executions)

    def _finish_commit(self, block: Block, executions: List[TxExecution]) -> None:
        if block.number != self._committed_height + 1:
            return  # stale double-commit attempt
        self.ledger.append(block, executions)
        self._committed_height = block.number
        self._pending_blocks.pop(block.number, None)
        self._votes.pop(block.number, None)
        self._commit_scheduled.discard(block.number)

        # stage 2: ledger synchronisation.  State transfer runs on the
        # gossip plane, separate from the CPU, but transfers one block at
        # a time — which is why the paper's block-size optimisation
        # "amortizes the cost of ledger synchronization across the
        # transactions in a block" (§6): five single-tx blocks queue for
        # five transfers, one five-tx block pays for one.
        state_hash = self.ledger.state_hash()
        transfer = (
            self.config.sync_base_ms
            + self.config.sync_per_peer_ms * len(self._electorate)
        )
        sched = self.network.scheduler
        start = max(sched.now, self._sync_free_at)
        done = start + transfer
        self._sync_free_at = done
        sched.call_at(done, self._announce_sync, block.number, state_hash)

        # Execution of the next block can now proceed.
        self._maybe_execute()

    def _announce_sync(self, block_number: int, state_hash: str) -> None:
        self._own_hash[block_number] = state_hash
        msg = SyncHashMsg(
            block_number=block_number, sender=self.name, state_hash=state_hash
        )
        self._record_sync_hash(msg)
        for peer in self._peers:
            self.send(peer, msg, size_bytes=self.config.sync_msg_bytes)
        self._try_sync(block_number)

    # ------------------------------------------------------------------
    # stage 2: ledger synchronisation

    def _on_sync_hash(self, msg: SyncHashMsg) -> None:
        self._record_sync_hash(msg)
        self._try_sync(msg.block_number)

    def _record_sync_hash(self, msg: SyncHashMsg) -> None:
        if msg.sender not in self._electorate:
            return
        if msg.block_number <= self._synced_height:
            return  # already synchronised; late hash
        self._sync_hashes.setdefault(msg.block_number, {})[msg.sender] = msg.state_hash

    def _try_sync(self, block_number: int) -> None:
        nxt = self._synced_height + 1
        while True:
            if nxt > self._committed_height or nxt not in self._own_hash:
                return
            own = self._own_hash[nxt]
            hashes = self._sync_hashes.get(nxt, {})
            matching = sum(1 for h in hashes.values() if h == own)
            if matching * 2 <= len(self._electorate) and nxt >= self._catch_up_below:
                return  # (catch-up blocks were synchronised network-wide
                #          already; no fresh quorum will form for them)
            self._synced_height = nxt
            self.block_synced_at[nxt] = self.network.scheduler.now
            self._sync_hashes.pop(nxt, None)
            self._own_hash.pop(nxt, None)
            synced_block = self.ledger.block(nxt)
            if self.on_block_synced is not None:
                self.on_block_synced(nxt, synced_block)
            nxt = self._synced_height + 1

    # ------------------------------------------------------------------
    # client queries

    def _on_query(self, src: Host, query: QueryTxStatus) -> None:
        code, block = self.ledger.tx_status(query.tx_id)
        if block is not None and block > self._synced_height:
            code, block = TxValidationCode.PENDING, None
        reply = TxStatusReply(tx_id=query.tx_id, code=code, block=block)
        self.send(src, reply, size_bytes=self.config.query_msg_bytes)


def _empty_rwset():
    from .transaction import RWSet

    return RWSet()
