"""Compact binary codec for cross-process shard traffic.

The process-parallel shard engine (``repro.blockchain.shardworker``)
moves commands, completions and summaries between the parent control
plane and shard worker processes.  Pickling live simulator objects
across that boundary would be both slow (pickle walks object graphs and
memo tables) and fragile (a worker would happily unpickle a closure or
a whole ``Network``).  This codec instead defines an explicit, closed
wire format:

* **values** — ``None``/bool/int/float/str/bytes and (nested)
  list/tuple/dict trees, msgpack-style: one tag byte, varint lengths,
  zigzag-varint integers of arbitrary precision (RSA signatures are
  512-bit ints), IEEE-754 doubles so simulated timestamps round-trip
  bit-exactly;
* **protocol objects** — :class:`Proposal`, :class:`Certificate`,
  :class:`Transaction`, :class:`BlockHeader`, :class:`Block`,
  :class:`TxResult` and every wire message in
  :mod:`repro.blockchain.messages`, each as a fixed field sequence.

Decoding reconstructs plain fresh objects: digest memos are *not*
transported, so a decoded transaction re-derives its digest from its
fields — ``decode(encode(tx)).digest() == tx.digest()`` is the
digest-preservation property the codec round-trip tests pin.

Anything outside the closed set raises :class:`CodecError` instead of
falling back to pickle.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List

from .block import Block, BlockHeader
from .identity import Certificate
from .crypto import PublicKey
from .messages import (
    DeliverBlock,
    QueryTxStatus,
    RequestBlocks,
    SubmitTx,
    SyncHashMsg,
    TxStatusReply,
    VoteMsg,
)
from .transaction import Proposal, Transaction, TxResult

__all__ = ["CodecError", "encode", "decode"]


class CodecError(ValueError):
    """Raised for objects outside the codec's closed type set, or for
    malformed/truncated wire bytes."""


# ---------------------------------------------------------------------
# tags

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09

_T_PROPOSAL = 0x20
_T_CERTIFICATE = 0x21
_T_TRANSACTION = 0x22
_T_BLOCK_HEADER = 0x23
_T_BLOCK = 0x24
_T_TX_RESULT = 0x25

_T_SUBMIT_TX = 0x30
_T_DELIVER_BLOCK = 0x31
_T_VOTE = 0x32
_T_SYNC_HASH = 0x33
_T_REQUEST_BLOCKS = 0x34
_T_QUERY_TX_STATUS = 0x35
_T_TX_STATUS_REPLY = 0x36

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


# ---------------------------------------------------------------------
# primitives

def _write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint (arbitrary precision)."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_zigzag(out: bytearray, value: int) -> None:
    _write_varint(out, (value << 1) ^ (value >> (value.bit_length() + 1)) if value < 0 else value << 1)


def _write_str(out: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    _write_varint(out, len(data))
    out += data


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def byte(self) -> int:
        try:
            value = self.data[self.pos]
        except IndexError:
            raise CodecError("truncated frame") from None
        self.pos += 1
        return value

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise CodecError("truncated frame")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def zigzag(self) -> int:
        raw = self.varint()
        return (raw >> 1) ^ -(raw & 1)

    def string(self) -> str:
        return self.take(self.varint()).decode("utf-8")


# ---------------------------------------------------------------------
# values

def _encode_value(out: bytearray, obj: Any) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif type(obj) is int:
        out.append(_T_INT)
        _write_zigzag(out, obj)
    elif type(obj) is float:
        out.append(_T_FLOAT)
        out += _pack_double(obj)
    elif type(obj) is str:
        out.append(_T_STR)
        _write_str(out, obj)
    elif type(obj) is bytes:
        out.append(_T_BYTES)
        _write_varint(out, len(obj))
        out += obj
    elif type(obj) is list:
        out.append(_T_LIST)
        _write_varint(out, len(obj))
        for item in obj:
            _encode_value(out, item)
    elif type(obj) is tuple:
        out.append(_T_TUPLE)
        _write_varint(out, len(obj))
        for item in obj:
            _encode_value(out, item)
    elif type(obj) is dict:
        out.append(_T_DICT)
        _write_varint(out, len(obj))
        for key, value in obj.items():
            _encode_value(out, key)
            _encode_value(out, value)
    else:
        encoder = _STRUCT_ENCODERS.get(type(obj))
        if encoder is None:
            raise CodecError(
                f"cannot encode {type(obj).__name__}: not in the codec's "
                "closed type set (convert it to native values first)"
            )
        encoder(out, obj)


# -- protocol objects --------------------------------------------------

def _encode_proposal(out: bytearray, p: Proposal) -> None:
    out.append(_T_PROPOSAL)
    _write_str(out, p.tx_id)
    _write_str(out, p.contract)
    _write_str(out, p.function)
    _encode_value(out, tuple(p.args))
    _write_str(out, p.nonce)
    _write_str(out, p.creator)
    out += _pack_double(p.timestamp)
    _encode_value(out, tuple(p.touched_keys))


def _decode_proposal(r: _Reader) -> Proposal:
    tx_id = r.string()
    contract = r.string()
    function = r.string()
    args = _decode_value(r)
    nonce = r.string()
    creator = r.string()
    timestamp = _unpack_double(r.take(8))[0]
    touched = _decode_value(r)
    return Proposal(
        tx_id=tx_id, contract=contract, function=function, args=args,
        nonce=nonce, creator=creator, timestamp=timestamp,
        touched_keys=touched,
    )


def _encode_certificate(out: bytearray, c: Certificate) -> None:
    out.append(_T_CERTIFICATE)
    _write_str(out, c.subject)
    _write_zigzag(out, c.public_key.n)
    _write_zigzag(out, c.public_key.e)
    _write_str(out, c.issuer)
    _write_zigzag(out, c.serial)
    _write_zigzag(out, c.signature)


def _decode_certificate(r: _Reader) -> Certificate:
    subject = r.string()
    n = r.zigzag()
    e = r.zigzag()
    issuer = r.string()
    serial = r.zigzag()
    signature = r.zigzag()
    return Certificate(
        subject=subject, public_key=PublicKey(n=n, e=e),
        issuer=issuer, serial=serial, signature=signature,
    )


def _encode_transaction(out: bytearray, tx: Transaction) -> None:
    out.append(_T_TRANSACTION)
    _encode_proposal(out, tx.proposal)
    _encode_certificate(out, tx.certificate)
    _write_zigzag(out, tx.signature)


def _decode_transaction(r: _Reader) -> Transaction:
    if r.byte() != _T_PROPOSAL:
        raise CodecError("transaction frame missing proposal")
    proposal = _decode_proposal(r)
    if r.byte() != _T_CERTIFICATE:
        raise CodecError("transaction frame missing certificate")
    certificate = _decode_certificate(r)
    signature = r.zigzag()
    return Transaction(proposal=proposal, certificate=certificate, signature=signature)


def _encode_block_header(out: bytearray, h: BlockHeader) -> None:
    out.append(_T_BLOCK_HEADER)
    _write_zigzag(out, h.number)
    _write_str(out, h.previous_hash)
    _write_str(out, h.data_hash)
    out += _pack_double(h.timestamp)


def _decode_block_header(r: _Reader) -> BlockHeader:
    number = r.zigzag()
    previous_hash = r.string()
    data_hash = r.string()
    timestamp = _unpack_double(r.take(8))[0]
    return BlockHeader(
        number=number, previous_hash=previous_hash,
        data_hash=data_hash, timestamp=timestamp,
    )


def _encode_block(out: bytearray, b: Block) -> None:
    out.append(_T_BLOCK)
    _encode_block_header(out, b.header)
    _write_varint(out, len(b.transactions))
    for tx in b.transactions:
        _encode_transaction(out, tx)
    _encode_value(out, list(b.validation_codes))
    _encode_value(out, b.config)
    _encode_value(out, b.plan)


def _decode_block(r: _Reader) -> Block:
    if r.byte() != _T_BLOCK_HEADER:
        raise CodecError("block frame missing header")
    header = _decode_block_header(r)
    n_txs = r.varint()
    txs: List[Transaction] = []
    for _ in range(n_txs):
        if r.byte() != _T_TRANSACTION:
            raise CodecError("block frame missing transaction")
        txs.append(_decode_transaction(r))
    validation_codes = _decode_value(r)
    config = _decode_value(r)
    plan = _decode_value(r)
    return Block(
        header=header, transactions=txs,
        validation_codes=validation_codes, config=config, plan=plan,
    )


def _encode_tx_result(out: bytearray, res: TxResult) -> None:
    out.append(_T_TX_RESULT)
    _write_str(out, res.tx_id)
    _write_str(out, res.code)
    _encode_value(out, res.block)
    _write_zigzag(out, res.votes_for)
    _write_zigzag(out, res.votes_against)
    _write_str(out, res.detail)


def _decode_tx_result(r: _Reader) -> TxResult:
    return TxResult(
        tx_id=r.string(), code=r.string(), block=_decode_value(r),
        votes_for=r.zigzag(), votes_against=r.zigzag(), detail=r.string(),
    )


# -- wire messages -----------------------------------------------------

def _encode_submit_tx(out: bytearray, msg: SubmitTx) -> None:
    out.append(_T_SUBMIT_TX)
    _encode_transaction(out, msg.tx)


def _decode_submit_tx(r: _Reader) -> SubmitTx:
    if r.byte() != _T_TRANSACTION:
        raise CodecError("SubmitTx frame missing transaction")
    return SubmitTx(tx=_decode_transaction(r))


def _encode_deliver_block(out: bytearray, msg: DeliverBlock) -> None:
    out.append(_T_DELIVER_BLOCK)
    _encode_block(out, msg.block)


def _decode_deliver_block(r: _Reader) -> DeliverBlock:
    if r.byte() != _T_BLOCK:
        raise CodecError("DeliverBlock frame missing block")
    return DeliverBlock(block=_decode_block(r))


def _encode_vote(out: bytearray, msg: VoteMsg) -> None:
    out.append(_T_VOTE)
    _write_zigzag(out, msg.block_number)
    _write_str(out, msg.voter)
    # Votes are a bool tuple: pack as a bit string, LSB-first per byte.
    _write_varint(out, len(msg.votes))
    bits = 0
    packed = bytearray()
    for i, vote in enumerate(msg.votes):
        if vote:
            bits |= 1 << (i & 7)
        if (i & 7) == 7:
            packed.append(bits)
            bits = 0
    if len(msg.votes) & 7:
        packed.append(bits)
    out += packed
    _write_zigzag(out, msg.signature)
    out.append(1 if msg.is_reply else 0)


def _decode_vote(r: _Reader) -> VoteMsg:
    block_number = r.zigzag()
    voter = r.string()
    n_votes = r.varint()
    packed = r.take((n_votes + 7) // 8)
    votes = tuple(bool(packed[i >> 3] & (1 << (i & 7))) for i in range(n_votes))
    signature = r.zigzag()
    is_reply = bool(r.byte())
    return VoteMsg(
        block_number=block_number, voter=voter, votes=votes,
        signature=signature, is_reply=is_reply,
    )


def _encode_sync_hash(out: bytearray, msg: SyncHashMsg) -> None:
    out.append(_T_SYNC_HASH)
    _write_zigzag(out, msg.block_number)
    _write_str(out, msg.sender)
    _write_str(out, msg.state_hash)
    out.append(1 if msg.is_reply else 0)


def _decode_sync_hash(r: _Reader) -> SyncHashMsg:
    return SyncHashMsg(
        block_number=r.zigzag(), sender=r.string(),
        state_hash=r.string(), is_reply=bool(r.byte()),
    )


def _encode_request_blocks(out: bytearray, msg: RequestBlocks) -> None:
    out.append(_T_REQUEST_BLOCKS)
    _write_zigzag(out, msg.from_number)
    _write_zigzag(out, msg.to_number)


def _decode_request_blocks(r: _Reader) -> RequestBlocks:
    return RequestBlocks(from_number=r.zigzag(), to_number=r.zigzag())


def _encode_query_tx_status(out: bytearray, msg: QueryTxStatus) -> None:
    out.append(_T_QUERY_TX_STATUS)
    _write_str(out, msg.tx_id)


def _decode_query_tx_status(r: _Reader) -> QueryTxStatus:
    return QueryTxStatus(tx_id=r.string())


def _encode_tx_status_reply(out: bytearray, msg: TxStatusReply) -> None:
    out.append(_T_TX_STATUS_REPLY)
    _write_str(out, msg.tx_id)
    _write_str(out, msg.code)
    _encode_value(out, msg.block)


def _decode_tx_status_reply(r: _Reader) -> TxStatusReply:
    return TxStatusReply(tx_id=r.string(), code=r.string(), block=_decode_value(r))


_STRUCT_ENCODERS: Dict[type, Callable[[bytearray, Any], None]] = {
    Proposal: _encode_proposal,
    Certificate: _encode_certificate,
    Transaction: _encode_transaction,
    BlockHeader: _encode_block_header,
    Block: _encode_block,
    TxResult: _encode_tx_result,
    SubmitTx: _encode_submit_tx,
    DeliverBlock: _encode_deliver_block,
    VoteMsg: _encode_vote,
    SyncHashMsg: _encode_sync_hash,
    RequestBlocks: _encode_request_blocks,
    QueryTxStatus: _encode_query_tx_status,
    TxStatusReply: _encode_tx_status_reply,
}

_STRUCT_DECODERS: Dict[int, Callable[[_Reader], Any]] = {
    _T_PROPOSAL: _decode_proposal,
    _T_CERTIFICATE: _decode_certificate,
    _T_TRANSACTION: _decode_transaction,
    _T_BLOCK_HEADER: _decode_block_header,
    _T_BLOCK: _decode_block,
    _T_TX_RESULT: _decode_tx_result,
    _T_SUBMIT_TX: _decode_submit_tx,
    _T_DELIVER_BLOCK: _decode_deliver_block,
    _T_VOTE: _decode_vote,
    _T_SYNC_HASH: _decode_sync_hash,
    _T_REQUEST_BLOCKS: _decode_request_blocks,
    _T_QUERY_TX_STATUS: _decode_query_tx_status,
    _T_TX_STATUS_REPLY: _decode_tx_status_reply,
}


def _decode_value(r: _Reader) -> Any:
    tag = r.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return r.zigzag()
    if tag == _T_FLOAT:
        return _unpack_double(r.take(8))[0]
    if tag == _T_STR:
        return r.string()
    if tag == _T_BYTES:
        return r.take(r.varint())
    if tag == _T_LIST:
        return [_decode_value(r) for _ in range(r.varint())]
    if tag == _T_TUPLE:
        return tuple(_decode_value(r) for _ in range(r.varint()))
    if tag == _T_DICT:
        out = {}
        for _ in range(r.varint()):
            key = _decode_value(r)
            out[key] = _decode_value(r)
        return out
    decoder = _STRUCT_DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown tag 0x{tag:02x} at offset {r.pos - 1}")
    return decoder(r)


# ---------------------------------------------------------------------
# public API

def encode(obj: Any) -> bytes:
    """Encode one value / protocol object tree to bytes."""
    out = bytearray()
    _encode_value(out, obj)
    return bytes(out)


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode`; rejects trailing junk."""
    r = _Reader(data)
    obj = _decode_value(r)
    if r.pos != len(data):
        raise CodecError(f"{len(data) - r.pos} trailing bytes after frame")
    return obj
