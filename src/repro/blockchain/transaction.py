"""Transactions, read/write sets and validation codes.

A shim wraps each game event in a *query object* — the contract function
to invoke, its arguments, a nonce against replay, and the creator's
certificate — signs it, and submits it as a transaction (§4, workflow).
Peers execute the contract locally in block order and vote on validity;
the per-transaction validation code records why a transaction was
accepted or rejected (a rejected asset update *is* a prevented cheat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .crypto import canonical_digest
from .identity import Certificate

__all__ = [
    "TxValidationCode",
    "Proposal",
    "ReadSet",
    "WriteSet",
    "RWSet",
    "Transaction",
    "TxResult",
]


class TxValidationCode:
    """Why a transaction committed as valid or invalid (Fabric-style)."""

    VALID = "VALID"
    MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
    PHANTOM_READ_CONFLICT = "PHANTOM_READ_CONFLICT"
    CONTRACT_REJECTED = "CONTRACT_REJECTED"  # illegal state transition: a cheat
    DUPLICATE_NONCE = "DUPLICATE_NONCE"  # replay attack
    BAD_SIGNATURE = "BAD_SIGNATURE"
    BAD_CERTIFICATE = "BAD_CERTIFICATE"
    CONSENSUS_NOT_REACHED = "CONSENSUS_NOT_REACHED"
    UNKNOWN_CONTRACT = "UNKNOWN_CONTRACT"
    PENDING = "PENDING"
    #: The client gave up polling: the network never finalised the
    #: transaction (e.g. consensus liveness lost to a Byzantine majority
    #: or a partition).
    TIMEOUT = "TIMEOUT"

    #: Codes that mean the event was refused — i.e. a prevented cheat or
    #: a technical conflict the shim must retry.
    REJECTED = frozenset(
        {
            MVCC_READ_CONFLICT,
            PHANTOM_READ_CONFLICT,
            CONTRACT_REJECTED,
            DUPLICATE_NONCE,
            BAD_SIGNATURE,
            BAD_CERTIFICATE,
            CONSENSUS_NOT_REACHED,
            UNKNOWN_CONTRACT,
            TIMEOUT,
        }
    )


@dataclass(frozen=True)
class Proposal:
    """The signed invocation request assembled by the shim.

    ``touched_keys`` declares which world-state keys the invocation will
    operate on.  The shim derives it from the constraint specification
    (player × affected assets); the ordering service uses it for the
    paper's "mutually exclusive KVS per block" optimisation (§6 ii).
    """

    tx_id: str
    contract: str
    function: str
    args: Tuple[Any, ...]
    nonce: str
    creator: str
    timestamp: float
    touched_keys: Tuple[str, ...] = ()

    def digest(self, fresh: bool = False) -> str:
        """Canonical digest of the proposal.

        Memoised on the (frozen) object: in-process, every peer receives
        the *same* gossiped proposal object and the digest is pure, so N
        peers pay the JSON+SHA cost once.  Integrity auditing passes
        ``fresh=True`` to recompute from the current field values (the
        path that catches a tampered-in-place object).
        """
        if not fresh:
            cached = getattr(self, "_digest_memo", None)
            if cached is not None:
                return cached
        digest = canonical_digest(
            {
                "tx_id": self.tx_id,
                "contract": self.contract,
                "function": self.function,
                "args": list(self.args),
                "nonce": self.nonce,
                "creator": self.creator,
                "timestamp": self.timestamp,
            }
        )
        if not fresh:
            object.__setattr__(self, "_digest_memo", digest)
        return digest


ReadSet = List[Tuple[str, Optional[Tuple[int, int]]]]
WriteSet = List[Tuple[str, Any]]


@dataclass
class RWSet:
    """Keys read (with observed versions) and written by an execution."""

    reads: ReadSet = field(default_factory=list)
    writes: WriteSet = field(default_factory=list)

    def read_keys(self) -> List[str]:
        return [k for k, _ in self.reads]

    def write_keys(self) -> List[str]:
        return [k for k, _ in self.writes]

    def touched(self) -> List[str]:
        seen: Dict[str, None] = {}
        for k in self.read_keys() + self.write_keys():
            seen.setdefault(k)
        return list(seen)


@dataclass
class Transaction:
    """A proposal plus the creator's certificate and signature."""

    proposal: Proposal
    certificate: Certificate
    signature: int

    @property
    def tx_id(self) -> str:
        return self.proposal.tx_id

    def digest(self, fresh: bool = False) -> str:
        if not fresh:
            cached = getattr(self, "_digest_memo", None)
            if cached is not None:
                return cached
        digest = canonical_digest(
            {
                "proposal": self.proposal.digest(fresh=fresh),
                "creator": self.certificate.subject,
            }
        )
        if not fresh:
            self._digest_memo = digest
        return digest

    def verify_signature(self) -> bool:
        """True iff the creator's signature covers the proposal.

        The verdict is memoised on the transaction (and the underlying
        modexp process-wide, see ``crypto._VERIFY_CACHE``): all peers
        validating the same gossiped transaction pay the cost once.
        """
        cached = getattr(self, "_sig_memo", None)
        if cached is None:
            cached = self.certificate.public_key.verify(
                self.proposal.digest(), self.signature
            )
            self._sig_memo = cached
        return cached


@dataclass
class TxResult:
    """Final, consensus-backed status of a transaction as seen by a peer."""

    tx_id: str
    code: str
    block: Optional[int] = None
    votes_for: int = 0
    votes_against: int = 0
    detail: str = ""

    @property
    def committed(self) -> bool:
        return self.code == TxValidationCode.VALID

    @property
    def rejected(self) -> bool:
        return self.code in TxValidationCode.REJECTED
