"""Blocks: ordered transaction batches chained by hash.

Each block carries "the creation timestamp, the hash of the previous
block in the chain" (§3.1) plus a Merkle root over its transactions, so
any retroactive modification breaks the chain (tested in
``tests/test_blockchain_ledger.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .crypto import canonical_digest, merkle_root
from .transaction import Transaction

__all__ = ["BlockHeader", "Block", "make_genesis_block"]


@dataclass(frozen=True)
class BlockHeader:
    number: int
    previous_hash: str
    data_hash: str
    timestamp: float

    def digest(self, fresh: bool = False) -> str:
        """Block hash; memoised on the frozen header (``fresh=True``
        recomputes — the path integrity audits rely on)."""
        if not fresh:
            cached = getattr(self, "_digest_memo", None)
            if cached is not None:
                return cached
        digest = canonical_digest(
            {
                "number": self.number,
                "previous_hash": self.previous_hash,
                "data_hash": self.data_hash,
                "timestamp": self.timestamp,
            }
        )
        if not fresh:
            object.__setattr__(self, "_digest_memo", digest)
        return digest


@dataclass
class Block:
    header: BlockHeader
    transactions: List[Transaction]
    #: Per-transaction validation codes, filled in at commit time
    #: (Fabric stores these in block metadata).
    validation_codes: List[str] = field(default_factory=list)
    #: Genesis configuration payload (None for ordinary blocks).
    config: Optional[Dict] = None
    #: Static conflict plan recorded by the ordering service when the
    #: ``conflict_planner`` flag is on (see ``staticcheck.plan``).  Commit
    #: metadata like ``validation_codes``: not covered by the block hash,
    #: purely advisory for validators.
    plan: Optional[Dict] = None

    @property
    def number(self) -> int:
        return self.header.number

    def digest(self, fresh: bool = False) -> str:
        return self.header.digest(fresh=fresh)

    def data_digest(self, fresh: bool = False) -> str:
        """Merkle root over the block's transaction digests.

        Memoised: every peer receiving the same gossiped block would
        otherwise recompute the identical Merkle tree.  ``fresh=True``
        recomputes from the live transaction list (chain audits).
        """
        if not fresh:
            cached = getattr(self, "_data_digest_memo", None)
            if cached is not None:
                return cached
        digest = merkle_root([tx.digest(fresh=fresh) for tx in self.transactions])
        if not fresh:
            self._data_digest_memo = digest
        return digest

    def size_bytes(self, tx_bytes: int, overhead_bytes: int) -> int:
        """Wire size estimate used by the simulated transport."""
        return overhead_bytes + tx_bytes * len(self.transactions)

    def tx_ids(self) -> List[str]:
        return [tx.tx_id for tx in self.transactions]


def make_block(
    number: int, previous_hash: str, transactions: List[Transaction], timestamp: float
) -> Block:
    """Assemble a block, computing its data hash from the transactions."""
    data_hash = merkle_root([tx.digest() for tx in transactions])
    header = BlockHeader(
        number=number,
        previous_hash=previous_hash,
        data_hash=data_hash,
        timestamp=timestamp,
    )
    block = Block(header=header, transactions=transactions)
    block._data_digest_memo = data_hash  # just computed it
    return block


def make_genesis_block(config: Dict) -> Block:
    """Create the genesis block from a network configuration.

    The initiator shim "creates and distributes a genesis block to all
    peers signifying the start of the common distributed ledger"
    (§4.2.2).  ``config`` is the parsed ``configtx``-style description:
    peer names, certificates, consensus policy and ordering parameters.
    """
    data_hash = canonical_digest(config)
    header = BlockHeader(
        number=0, previous_hash="0" * 64, data_hash=data_hash, timestamp=0.0
    )
    return Block(header=header, transactions=[], config=dict(config))
