"""Assembly of a complete blockchain network atop the simulated fabric.

``BlockchainNetwork`` is what the initiator shim's *network generation*
step (§4.2.2) produces: a CA, enrolled peer identities, a genesis block
derived from the configtx-style configuration, an ordering service, and
one peer per player, all attached to a simulated network with the
requested latency profile and placement.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..simnet.latency import INTERNET_US, LatencyProfile, Region
from ..simnet.topology import place_random
from ..simnet.transport import Network
from .block import Block, make_genesis_block
from .client import BlockchainClient
from .config import FabricConfig
from .contracts import Contract
from .identity import CertificateAuthority, Identity, MembershipProvider
from .ordering import OrderingService
from .peer import Peer
from .policy import MAJORITY, ConsensusPolicy

__all__ = ["BlockchainNetwork"]


class BlockchainNetwork:
    """A ready-to-run permissioned blockchain deployment.

    Args:
        n_peers: number of peers (one per player in the game setting).
        profile: latency profile (``INTERNET_US`` reproduces the paper's
            SoftLayer deployment; ``LAN_1GBPS`` its LAN testbed).
        config: platform parameters (block size, compute costs, ...).
        policy: consensus-policy expression; defaults to simple majority.
        regions: explicit per-peer regions; default is Swarm-style random
            placement across the US regions.
        seed: drives placement and network jitter.
    """

    def __init__(
        self,
        n_peers: int,
        profile: LatencyProfile = INTERNET_US,
        config: Optional[FabricConfig] = None,
        policy: str = MAJORITY,
        regions: Optional[Sequence[str]] = None,
        seed: int = 0,
        net: Optional[Network] = None,
        ca: Optional[CertificateAuthority] = None,
        name_prefix: str = "",
    ):
        """``net``/``ca``/``name_prefix`` let several chains share one
        simulated network and certificate authority — the basis of the
        sharded deployment (``repro.blockchain.sharding``)."""
        if n_peers < 1:
            raise ValueError("need at least one peer")
        self.config = config if config is not None else FabricConfig()
        self.policy = ConsensusPolicy(policy)
        if net is not None:
            self.net = net
        elif self.config.backend == "simnet":
            self.net = Network(profile=profile, seed=seed)
        else:
            # Deferred import: realnet depends on the blockchain codec.
            from ..realnet import make_network

            self.net = make_network(self.config.backend, profile=profile, seed=seed)
        self.ca = ca if ca is not None else CertificateAuthority(seed=seed)
        self.msp = MembershipProvider()
        self.msp.trust_ca(self.ca)
        self.name_prefix = name_prefix

        if regions is None:
            regions = place_random(n_peers, profile.region_pool, seed=seed)
        elif len(regions) != n_peers:
            raise ValueError("one region required per peer")

        peer_names = [f"{name_prefix}peer{i}" for i in range(n_peers)]
        genesis_config = {
            "peers": peer_names,
            "policy": policy,
            "max_block_txs": self.config.max_block_txs,
            "ca": self.ca.name,
        }
        self.genesis: Block = make_genesis_block(genesis_config)

        orderer_region = regions[0] if profile.name == "lan-1gbps" else Region.DALLAS
        orderer_identity = self.ca.enroll(f"{name_prefix}orderer")
        self.orderer = OrderingService(
            f"{name_prefix}orderer", orderer_region,
            config=self.config, genesis=self.genesis,
        )
        self.net.register(self.orderer)
        self._orderer_identity = orderer_identity

        self.peers: List[Peer] = []
        for name, region in zip(peer_names, regions):
            identity = self.ca.enroll(name)
            peer = Peer(
                name=name,
                region=region,
                identity=identity,
                msp=self.msp,
                genesis=self.genesis,
                policy=self.policy,
                config=self.config,
            )
            self.net.register(peer)
            self.peers.append(peer)

        for peer in self.peers:
            peer.connect_peers(self.peers)
            peer.orderer = self.orderer
        self.orderer.connect_peers(self.peers)

        self._clients: Dict[str, BlockchainClient] = {}
        #: Optional :class:`repro.telemetry.Telemetry`; set by
        #: ``Telemetry.instrument_chain``.  ``create_client`` propagates
        #: it so late-joining clients are instrumented too.
        self.telemetry = None

    # ------------------------------------------------------------------
    # deployment

    def install_contract(self, factory: Callable[[], Contract]) -> None:
        """Install one fresh contract instance per peer.

        The platform "ensures that the same contract is deployed on every
        peer" (§4.2.2); each peer gets its own instance because contract
        objects may cache state.

        With ``config.conflict_planner`` on, installation also arms the
        orderer with a :class:`repro.staticcheck.plan.ConflictPlanner`
        built from the contract's static footprints, so every cut block
        records its provably-independent validation lanes.
        ``config.parallel_validation`` arms the planner too: the parallel
        executor consumes the lanes, so blocks must carry them.
        """
        instances = [factory() for _ in self.peers]
        for peer, instance in zip(self.peers, instances):
            peer.install_contract(instance)
        if (self.config.conflict_planner or self.config.parallel_validation) and instances:
            from ..staticcheck.plan import ConflictPlanner

            self.orderer.planner = ConflictPlanner.for_contract(
                type(instances[0])
            )

    def create_client(
        self,
        name: str,
        identity: Optional[Identity] = None,
        anchor: Optional[Peer] = None,
        region: Optional[str] = None,
        poll_interval_ms: float = 1000.0 / 35.0,
    ) -> BlockchainClient:
        """Create and register a client colocated with its anchor peer."""
        anchor = anchor if anchor is not None else self.peers[0]
        identity = identity if identity is not None else self.ca.enroll(name)
        client = BlockchainClient(
            name=name,
            region=region if region is not None else anchor.region,
            identity=identity,
            orderer=self.orderer,
            anchor_peer=anchor,
            config=self.config,
            poll_interval_ms=poll_interval_ms,
        )
        self.net.register(client)
        self._clients[name] = client
        if self.telemetry is not None:
            client.telemetry = self.telemetry
        return client

    # ------------------------------------------------------------------
    # convenience

    @property
    def scheduler(self):
        return self.net.scheduler

    @property
    def now(self) -> float:
        return self.net.now

    def run(self, until: Optional[float] = None) -> None:
        self.net.run(until=until)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        self.net.run_until_idle(max_events=max_events)

    def peer_names(self) -> List[str]:
        return [p.name for p in self.peers]

    def all_synced(self) -> bool:
        """True when every reachable peer has synchronised every block."""
        heights = set()
        for peer in self.peers:
            if self.net.condition(peer.name).down:
                continue
            heights.add(peer.synced_height)
        return len(heights) == 1
