"""Consensus-policy mini-language.

"The consensus policy is a boolean formula over asset update validation
results communicated by each peer.  In the absence of any user specified
consensus criteria, we fallback on the blockchain platform's default
consensus policy." (§4.2.1) — the prototype's default is a simple
majority (§6).

Grammar::

    expr    := term ("or" term)*
    term    := factor ("and" factor)*
    factor  := "not" factor | "(" expr ")" | atom
    atom    := "majority" | "all" | "any" | "atleast(" INT ")" | "peer(" NAME ")"

Examples: ``"majority"``, ``"atleast(3)"``,
``"majority and peer(referee)"``, ``"all or (majority and peer(p0))"``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

__all__ = ["ConsensusPolicy", "PolicyError", "parse_policy", "MAJORITY"]


class PolicyError(ValueError):
    """Raised on a malformed policy expression."""


class _Node:
    def evaluate(self, votes: Dict[str, bool], total: int) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class _Majority(_Node):
    def evaluate(self, votes, total):
        yes = sum(1 for v in votes.values() if v)
        return yes * 2 > total

    def describe(self):
        return "majority"


class _All(_Node):
    def evaluate(self, votes, total):
        yes = sum(1 for v in votes.values() if v)
        return yes == total

    def describe(self):
        return "all"


class _Any(_Node):
    def evaluate(self, votes, total):
        return any(votes.values())

    def describe(self):
        return "any"


class _AtLeast(_Node):
    def __init__(self, k: int):
        if k < 1:
            raise PolicyError("atleast(k) requires k >= 1")
        self.k = k

    def evaluate(self, votes, total):
        yes = sum(1 for v in votes.values() if v)
        return yes >= self.k

    def describe(self):
        return f"atleast({self.k})"


class _PeerVote(_Node):
    def __init__(self, name: str):
        self.name = name

    def evaluate(self, votes, total):
        return bool(votes.get(self.name, False))

    def describe(self):
        return f"peer({self.name})"


class _Not(_Node):
    def __init__(self, child: _Node):
        self.child = child

    def evaluate(self, votes, total):
        return not self.child.evaluate(votes, total)

    def describe(self):
        return f"not {self.child.describe()}"


class _And(_Node):
    def __init__(self, children: List[_Node]):
        self.children = children

    def evaluate(self, votes, total):
        return all(c.evaluate(votes, total) for c in self.children)

    def describe(self):
        return "(" + " and ".join(c.describe() for c in self.children) + ")"


class _Or(_Node):
    def __init__(self, children: List[_Node]):
        self.children = children

    def evaluate(self, votes, total):
        return any(c.evaluate(votes, total) for c in self.children)

    def describe(self):
        return "(" + " or ".join(c.describe() for c in self.children) + ")"


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<atom>majority|all|any|and|or|not)"
    r"|(?P<atleast>atleast\(\s*(?P<k>\d+)\s*\))"
    r"|(?P<peer>peer\(\s*(?P<name>[\w.\-]+)\s*\))"
    r"|(?P<lparen>\()|(?P<rparen>\)))"
)


def _tokenize(text: str) -> List[tuple]:
    tokens: List[tuple] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise PolicyError(f"unexpected input at {text[pos:]!r}")
        if m.group("atom"):
            tokens.append((m.group("atom"), None))
        elif m.group("atleast"):
            tokens.append(("atleast", int(m.group("k"))))
        elif m.group("peer"):
            tokens.append(("peer", m.group("name")))
        elif m.group("lparen"):
            tokens.append(("(", None))
        elif m.group("rparen"):
            tokens.append((")", None))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[tuple]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[tuple]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> tuple:
        tok = self._peek()
        if tok is None:
            raise PolicyError("unexpected end of policy expression")
        self._pos += 1
        return tok

    def parse(self) -> _Node:
        node = self._expr()
        if self._peek() is not None:
            raise PolicyError(f"trailing tokens: {self._tokens[self._pos:]}")
        return node

    def _expr(self) -> _Node:
        parts = [self._term()]
        while self._peek() == ("or", None):
            self._next()
            parts.append(self._term())
        return parts[0] if len(parts) == 1 else _Or(parts)

    def _term(self) -> _Node:
        parts = [self._factor()]
        while self._peek() == ("and", None):
            self._next()
            parts.append(self._factor())
        return parts[0] if len(parts) == 1 else _And(parts)

    def _factor(self) -> _Node:
        kind, value = self._next()
        if kind == "not":
            return _Not(self._factor())
        if kind == "(":
            node = self._expr()
            if self._next() != (")", None):
                raise PolicyError("missing closing parenthesis")
            return node
        if kind == "majority":
            return _Majority()
        if kind == "all":
            return _All()
        if kind == "any":
            return _Any()
        if kind == "atleast":
            return _AtLeast(value)
        if kind == "peer":
            return _PeerVote(value)
        raise PolicyError(f"unexpected token {kind!r}")


class ConsensusPolicy:
    """A compiled consensus policy.

    ``evaluate(votes, total)`` computes the formula over the votes seen so
    far.  ``decided(votes, total)`` additionally reports whether the
    outcome is already fixed regardless of how the missing peers vote —
    this lets a peer finalise as soon as a quorum is reached instead of
    waiting for stragglers (and is what makes consensus progress when
    DDoSed peers never vote, §7.2.4(3)).
    """

    def __init__(self, expression: str):
        self.expression = expression.strip()
        if not self.expression:
            raise PolicyError("empty policy expression")
        self._root = _Parser(_tokenize(self.expression)).parse()

    def evaluate(self, votes: Dict[str, bool], total: int) -> bool:
        if total < 1:
            raise PolicyError("total peer count must be >= 1")
        return self._root.evaluate(votes, total)

    def decided(
        self, votes: Dict[str, bool], total: int, all_voters: Optional[List[str]] = None
    ) -> Optional[bool]:
        """The fixed outcome given partial votes, or None if still open.

        ``all_voters`` names the full electorate; missing voters are tried
        both ways.  When omitted, synthetic names stand in for the
        ``total - len(votes)`` absentees (sound for the vote-counting
        atoms; ``peer(name)`` atoms need the real electorate).
        """
        if all_voters is None:
            n_missing = max(total - len(votes), 0)
        else:
            n_missing = sum(1 for v in all_voters if v not in votes)
        if type(self._root) is _Majority:
            # Fast path for the default policy (the overwhelmingly common
            # case, evaluated once per vote per tx per peer): counting is
            # enough — no need to materialise optimistic/pessimistic vote
            # dicts and re-walk the tree twice.
            yes = sum(1 for v in votes.values() if v)
            return self.decided_counts(yes, len(votes), total)
        if all_voters is None:
            missing = [f"_absent{i}" for i in range(total - len(votes))]
        else:
            missing = [v for v in all_voters if v not in votes]
        optimistic = dict(votes)
        pessimistic = dict(votes)
        for name in missing:
            optimistic[name] = True
            pessimistic[name] = False
        hi = self._root.evaluate(optimistic, total)
        lo = self._root.evaluate(pessimistic, total)
        if hi == lo:
            return hi
        return None

    @property
    def is_simple_majority(self) -> bool:
        """True iff the compiled policy is exactly ``majority`` — the
        shape :meth:`decided_counts` can finalise from vote counts alone
        (callers on the hot path use this to skip building vote dicts)."""
        return type(self._root) is _Majority

    def decided_counts(self, yes: int, cast: int, total: int) -> Optional[bool]:
        """Count-based :meth:`decided` for the plain-majority policy:
        ``yes`` of ``cast`` votes received, out of ``total`` electors.
        Only meaningful when :attr:`is_simple_majority` is true."""
        n_missing = total - cast
        if n_missing > 0:
            hi = (yes + n_missing) * 2 > total
            lo = yes * 2 > total
            return hi if hi == lo else None
        return yes * 2 > total

    def describe(self) -> str:
        return self._root.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConsensusPolicy({self.expression!r})"


def parse_policy(expression: str) -> ConsensusPolicy:
    """Compile a policy expression (convenience wrapper)."""
    return ConsensusPolicy(expression)


#: The prototype's default: "our default consensus policy involves a
#: simple majority" (§6).
MAJORITY = "majority"
