"""Wire messages exchanged between blockchain nodes.

Kept deliberately small: the simulated transport carries Python objects,
and message identity (not encoding) is what the protocols care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .block import Block
from .transaction import Transaction

__all__ = [
    "SubmitTx",
    "DeliverBlock",
    "VoteMsg",
    "SyncHashMsg",
    "RequestBlocks",
    "QueryTxStatus",
    "TxStatusReply",
]


@dataclass(frozen=True)
class SubmitTx:
    """Shim → ordering service: a new transaction for ordering."""

    tx: Transaction


@dataclass(frozen=True)
class DeliverBlock:
    """Ordering service → peer: a freshly cut block."""

    block: Block


@dataclass(frozen=True)
class VoteMsg:
    """Peer → peers: per-transaction validity votes for one block.

    ``votes[i]`` is the sender's verdict on the i-th transaction of
    block ``block_number`` after executing it locally.
    """

    block_number: int
    voter: str
    votes: Tuple[bool, ...]
    signature: int = 0
    #: True on the anti-entropy *answer* to a re-broadcast vote; a reply
    #: must never be answered in turn or two peers ping-pong forever.
    is_reply: bool = False


@dataclass(frozen=True)
class SyncHashMsg:
    """Peer → peers: post-commit state hash for the ledger-sync stage."""

    block_number: int
    sender: str
    state_hash: str
    #: see :attr:`VoteMsg.is_reply`
    is_reply: bool = False


@dataclass(frozen=True)
class RequestBlocks:
    """Peer → ordering service: retransmit a block range.

    Sent when a peer detects a gap in delivery (it was unreachable —
    e.g. DDoSed — while blocks were cut) so it can catch up and rejoin
    consensus.
    """

    from_number: int
    to_number: int


@dataclass(frozen=True)
class QueryTxStatus:
    """Shim → peer: poll the commit status of a transaction."""

    tx_id: str


@dataclass(frozen=True)
class TxStatusReply:
    """Peer → shim: current status of a polled transaction.

    ``code`` is PENDING until the enclosing block has both committed and
    completed ledger synchronisation — the paper counts both stages in
    the event-validation latency (§6, Optimizations).
    """

    tx_id: str
    code: str
    block: Optional[int]
