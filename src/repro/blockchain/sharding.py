"""Sharded deployment — the paper's §8(5) future-work direction.

"Our prototype reports increasing validation latency with increasing
peers, and cannot currently scale to MMORPGs … However, recent
advancements [sharding, consensus algorithms] can help mitigate the
issue."  This module grows that idea into a horizontal-scale subsystem:

* **per-shard pipelines** — the room's peers are partitioned into
  ``n_shards`` independent chains, each with its own ordering service,
  peer set and validation executor, all driven by *one* shared
  deterministic sim clock (one :class:`~repro.simnet.transport.Network`)
  so multi-shard runs stay replayable;
* **stable routing** — sessions and state-key prefixes map to shards by
  an explicit crc32 hash (:meth:`ShardedDeployment.shard_index_for_key`),
  never by anything interpreter- or process-dependent;
* **cross-shard atomicity** — :mod:`repro.blockchain.swaps` layers a
  two-phase prepare/commit protocol over per-shard clients so an asset
  can move between shards without ever being duplicated or destroyed.

Consensus, vote traffic and ledger sync all scale with the *shard* size
instead of the room size.  The trade-off is explicit: each asset update
is validated by a subset of the room, so the honest-majority assumption
must hold per shard.  ``bench_ablation_sharding.py`` measures the
latency side of the trade; the ``sharded-replay-{1,4,8}s`` perf
workloads measure the throughput side.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..simnet.latency import INTERNET_US, LatencyProfile
from ..simnet.transport import Network
from .client import BlockchainClient
from .config import FabricConfig
from .contracts import Contract
from .identity import CertificateAuthority
from .network import BlockchainNetwork
from .peer import Peer
from .policy import MAJORITY

__all__ = ["ShardedDeployment", "shard_index_for_key", "session_shard_key"]


def shard_index_for_key(key: str, n_shards: int) -> int:
    """Stable shard routing: crc32 of the key's UTF-8 bytes, mod shards.

    crc32 is part of the zlib format (RFC 1950) and returns the same
    value on every platform, interpreter and run — unlike ``hash()``,
    which is salted per process.  The same polynomial already buckets
    keys inside :meth:`~repro.blockchain.state.WorldState.state_hash`,
    so routing and state hashing share one well-understood function.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    return zlib.crc32(key.encode("utf-8")) % n_shards


def session_shard_key(session_id: str) -> str:
    """The routing key of a whole game session.

    Every state key of a session shares the ``sess/<id>`` prefix, so
    hashing the *prefix* (not the full key) colocates a session's entire
    key space on one shard — the zone/session partitioning move of the
    MMOG scaling literature.
    """
    return f"sess/{session_id}"


class ShardedDeployment:
    """``n_shards`` independent chains over one simulated network.

    Keys are routed by stable hash: :meth:`shard_for_key` names the
    chain responsible for a world-state key, and every client must
    submit a transaction to the shard owning its touched keys.
    Cross-shard asset transfers go through the two-phase protocol in
    :mod:`repro.blockchain.swaps` instead of a single transaction.
    """

    def __init__(
        self,
        n_peers: int,
        n_shards: int,
        profile: LatencyProfile = INTERNET_US,
        config: Optional[FabricConfig] = None,
        policy: str = MAJORITY,
        seed: int = 0,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if n_peers < n_shards:
            raise ValueError("need at least one peer per shard")
        self.n_shards = n_shards
        self.config = config if config is not None else FabricConfig()
        self.net = Network(profile=profile, seed=seed)
        self.ca = CertificateAuthority(seed=seed)
        base, extra = divmod(n_peers, n_shards)
        self.shards: List[BlockchainNetwork] = []
        for index in range(n_shards):
            size = base + (1 if index < extra else 0)
            self.shards.append(
                BlockchainNetwork(
                    n_peers=size,
                    profile=profile,
                    config=self.config,
                    policy=policy,
                    seed=seed + index,
                    net=self.net,
                    ca=self.ca,
                    name_prefix=f"s{index}-",
                )
            )
        self._clients: Dict[Tuple[int, str], BlockchainClient] = {}
        #: Optional :class:`repro.telemetry.Telemetry`; set by
        #: ``Telemetry.instrument_sharded``.
        self.telemetry = None

    @property
    def n_peers(self) -> int:
        return sum(len(shard.peers) for shard in self.shards)

    # ------------------------------------------------------------------
    # routing

    def shard_index_for_key(self, key: str) -> int:
        return shard_index_for_key(key, self.n_shards)

    def shard_for_key(self, key: str) -> BlockchainNetwork:
        return self.shards[self.shard_index_for_key(key)]

    def shard_index_for_session(self, session_id: str) -> int:
        """Shard owning a whole session's key space (``sess/<id>/...``)."""
        return self.shard_index_for_key(session_shard_key(session_id))

    def shard_for_session(self, session_id: str) -> BlockchainNetwork:
        return self.shards[self.shard_index_for_session(session_id)]

    # ------------------------------------------------------------------
    # deployment

    def install_contract(self, factory: Callable[[], Contract]) -> None:
        for shard in self.shards:
            shard.install_contract(factory)

    def client_for_shard(
        self,
        shard_index: int,
        name_prefix: str = "router",
        poll_interval_ms: Optional[float] = None,
    ) -> BlockchainClient:
        """Get-or-create one submission client anchored on a shard.

        The router and the swap coordinators share these clients: a
        coordinator is a host-side state machine, not a network
        identity, so per-swap client (and RSA enrolment) cost would be
        pure overhead.  ``poll_interval_ms`` only applies when the
        client is first created.
        """
        key = (shard_index, name_prefix)
        client = self._clients.get(key)
        if client is None:
            client = self.shards[shard_index].create_client(
                f"{name_prefix}-s{shard_index}",
                poll_interval_ms=(
                    poll_interval_ms if poll_interval_ms is not None
                    else 1000.0 / 35.0
                ),
            )
            self._clients[key] = client
        return client

    # ------------------------------------------------------------------
    # state inspection (host-side, read-only)

    def reference_peer(self, shard_index: int) -> Optional[Peer]:
        """The shard's most-advanced reachable peer.

        Host-side readers (swap recovery, the global conservation scan)
        need a consistent-enough cut of a shard's committed state; the
        max-committed-height reachable peer is monotone with respect to
        the shard's commit order, so cross-shard reads through it can
        never observe a transfer's destination before its source.
        Returns None when every peer of the shard is down.
        """
        best: Optional[Peer] = None
        for peer in self.shards[shard_index].peers:
            if self.net.condition(peer.name).down:
                continue
            if best is None or peer.committed_height > best.committed_height:
                best = peer
        return best

    def committed_state_get(self, shard_index: int, key: str) -> Any:
        """Read one key from a shard's reference committed state."""
        peer = self.reference_peer(shard_index)
        if peer is None:
            return None
        return peer.ledger.state.get(key)

    def committed_tx_count(self) -> int:
        """Total transactions committed across all shards (reference
        peers), including invalidated ones — the pipeline processed
        them either way."""
        total = 0
        for index in range(self.n_shards):
            peer = self.reference_peer(index)
            if peer is not None:
                total += len(peer.ledger.committed_tx_ids())
        return total

    def committed_heights(self) -> List[int]:
        """Max committed height per shard (0 for an unreachable shard)."""
        out: List[int] = []
        for index in range(self.n_shards):
            peer = self.reference_peer(index)
            out.append(peer.committed_height if peer is not None else 0)
        return out

    def ledgers_agree(self) -> List[bool]:
        """Per shard: do all reachable peers hold identical state?"""
        results: List[bool] = []
        for shard in self.shards:
            hashes = {
                peer.ledger.state_hash()
                for peer in shard.peers
                if not self.net.condition(peer.name).down
            }
            results.append(len(hashes) == 1)
        return results

    # ------------------------------------------------------------------
    # convenience

    @property
    def scheduler(self):
        return self.net.scheduler

    @property
    def now(self) -> float:
        return self.net.now

    def all_peers(self) -> List[Peer]:
        return [peer for shard in self.shards for peer in shard.peers]

    def peer_names(self) -> List[str]:
        return [peer.name for peer in self.all_peers()]

    def orderer_names(self) -> List[str]:
        return [shard.orderer.name for shard in self.shards]

    def run(self, until: Optional[float] = None) -> None:
        self.net.run(until=until)

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        self.net.run_until_idle(max_events=max_events)

    def all_synced(self) -> bool:
        return all(shard.all_synced() for shard in self.shards)
