"""Sharded deployment — the paper's §8(5) future-work direction.

"Our prototype reports increasing validation latency with increasing
peers, and cannot currently scale to MMORPGs … However, recent
advancements [sharding, consensus algorithms] can help mitigate the
issue."  This module implements the simplest such design: the room's
peers are partitioned into ``n_shards`` independent chains, each chain
owning a disjoint slice of the asset-key space (assets are already
per-player per-asset keys, so slices are natural).  Consensus, vote
traffic and ledger sync all scale with the *shard* size instead of the
room size.

The trade-off is explicit: each asset update is validated by a subset
of the room, so the honest-majority assumption must hold per shard.
``bench_ablation_sharding.py`` measures the latency side of the trade.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Optional

from ..simnet.latency import INTERNET_US, LatencyProfile
from ..simnet.transport import Network
from .config import FabricConfig
from .contracts import Contract
from .identity import CertificateAuthority
from .network import BlockchainNetwork
from .policy import MAJORITY

__all__ = ["ShardedDeployment"]


class ShardedDeployment:
    """``n_shards`` independent chains over one simulated network.

    Keys are routed by stable hash: :meth:`shard_for_key` names the
    chain responsible for a world-state key, and every client must
    submit a transaction to the shard owning its touched keys
    (cross-shard transactions are out of scope, as in the sharding
    systems the paper cites — they partition by account/key too).
    """

    def __init__(
        self,
        n_peers: int,
        n_shards: int,
        profile: LatencyProfile = INTERNET_US,
        config: Optional[FabricConfig] = None,
        policy: str = MAJORITY,
        seed: int = 0,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if n_peers < n_shards:
            raise ValueError("need at least one peer per shard")
        self.n_shards = n_shards
        self.net = Network(profile=profile, seed=seed)
        self.ca = CertificateAuthority(seed=seed)
        base, extra = divmod(n_peers, n_shards)
        self.shards: List[BlockchainNetwork] = []
        for index in range(n_shards):
            size = base + (1 if index < extra else 0)
            self.shards.append(
                BlockchainNetwork(
                    n_peers=size,
                    profile=profile,
                    config=config,
                    policy=policy,
                    seed=seed + index,
                    net=self.net,
                    ca=self.ca,
                    name_prefix=f"s{index}-",
                )
            )

    @property
    def n_peers(self) -> int:
        return sum(len(shard.peers) for shard in self.shards)

    def shard_index_for_key(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return digest[0] % self.n_shards

    def shard_for_key(self, key: str) -> BlockchainNetwork:
        return self.shards[self.shard_index_for_key(key)]

    def install_contract(self, factory: Callable[[], Contract]) -> None:
        for shard in self.shards:
            shard.install_contract(factory)

    # ------------------------------------------------------------------
    # convenience

    @property
    def scheduler(self):
        return self.net.scheduler

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        self.net.run_until_idle(max_events=max_events)

    def all_synced(self) -> bool:
        return all(shard.all_synced() for shard in self.shards)
