"""PKI certificates and membership (the permissioned blockchain's MSP).

The shim's peer-discovery step has interested peers send "their
credentials, i.e., PKI certificates and IP address, to the initiator
shim" (§4.2.1).  The certificates here are real: a session
:class:`CertificateAuthority` signs ``(subject, public key, serial)``
tuples with its own RSA key, and a :class:`MembershipProvider` (Fabric's
MSP) validates presented certificates against trusted CA roots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .crypto import KeyPair, PublicKey, canonical_digest, generate_keypair, verify_batch

__all__ = ["Certificate", "Identity", "CertificateAuthority", "MembershipProvider"]


@dataclass(frozen=True)
class Certificate:
    """An issued certificate binding ``subject`` to ``public_key``."""

    subject: str
    public_key: PublicKey
    issuer: str
    serial: int
    signature: int

    def tbs(self, fresh: bool = False) -> str:
        """The to-be-signed content digest (memoised on the frozen
        certificate; ``fresh=True`` recomputes for audit paths)."""
        if not fresh:
            cached = getattr(self, "_tbs_memo", None)
            if cached is not None:
                return cached
        digest = canonical_digest(
            {
                "subject": self.subject,
                "public_key": self.public_key.to_dict(),
                "issuer": self.issuer,
                "serial": self.serial,
            }
        )
        if not fresh:
            object.__setattr__(self, "_tbs_memo", digest)
        return digest


@dataclass
class Identity:
    """A named principal: key pair plus CA-issued certificate."""

    name: str
    keypair: KeyPair
    certificate: Certificate

    def sign(self, message) -> int:
        return self.keypair.sign(message)

    @property
    def public_key(self) -> PublicKey:
        return self.keypair.public


class CertificateAuthority:
    """The game session's certificate authority.

    One CA is created per game session (the blockchain is ephemeral and
    torn down at session end, §4.2.6); every participating peer enrols to
    receive an identity.
    """

    def __init__(self, name: str = "session-ca", seed: int = 0):
        self.name = name
        self._seed = seed
        self._keypair = generate_keypair(("ca", name, seed))
        self._serial = 0
        self._issued: Dict[str, Certificate] = {}

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    def enroll(self, subject: str) -> Identity:
        """Generate a key pair for ``subject`` and issue a certificate."""
        if subject in self._issued:
            raise ValueError(f"subject {subject!r} already enrolled")
        keypair = generate_keypair(("id", self.name, self._seed, subject))
        cert = self.issue(subject, keypair.public)
        return Identity(name=subject, keypair=keypair, certificate=cert)

    def issue(self, subject: str, public_key: PublicKey) -> Certificate:
        """Issue a certificate over an externally generated public key."""
        self._serial += 1
        unsigned = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=self._serial,
            signature=0,
        )
        signature = self._keypair.sign(unsigned.tbs())
        cert = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=self._serial,
            signature=signature,
        )
        self._issued[subject] = cert
        return cert

    def verify(self, cert: Certificate) -> bool:
        return cert.issuer == self.name and self._keypair.public.verify(
            cert.tbs(), cert.signature
        )


class MembershipProvider:
    """Validates certificates against a set of trusted CAs (Fabric's MSP)."""

    def __init__(self) -> None:
        self._roots: Dict[str, PublicKey] = {}

    def trust(self, ca_name: str, ca_public_key: PublicKey) -> None:
        self._roots[ca_name] = ca_public_key

    def trust_ca(self, ca: CertificateAuthority) -> None:
        self.trust(ca.name, ca.public_key)

    def validate(self, cert: Certificate) -> bool:
        """True iff ``cert`` was signed by a trusted CA."""
        root = self._roots.get(cert.issuer)
        if root is None:
            return False
        return root.verify(cert.tbs(), cert.signature)

    def validate_batch(self, certs: Sequence[Certificate]) -> List[bool]:
        """:meth:`validate` for many certificates in one amortised
        :func:`~repro.blockchain.crypto.verify_batch` pass.  Certificates
        from untrusted issuers are rejected without touching the batch."""
        triples = []
        slots = []
        results = [False] * len(certs)
        for i, cert in enumerate(certs):
            root = self._roots.get(cert.issuer)
            if root is None:
                continue
            triples.append((root, cert.tbs(), cert.signature))
            slots.append(i)
        if triples:
            for i, ok in zip(slots, verify_batch(triples)):
                results[i] = ok
        return results

    def verify_signature(self, cert: Certificate, message, signature: int) -> bool:
        """Validate the certificate chain *and* a signature under it."""
        return self.validate(cert) and cert.public_key.verify(message, signature)
