"""A from-scratch Fabric-v1.0-style permissioned blockchain.

Execute-order-validate pipeline with an ordering service, block-level
MVCC key-value-store conflicts, per-transaction peer voting under a
configurable consensus policy, and a post-commit ledger-synchronisation
stage — the two stages whose sum the paper calls *event validation
latency* (§6).
"""

from .block import Block, BlockHeader, make_genesis_block
from .client import BlockchainClient, PendingTx
from .config import FabricConfig
from .contracts import (
    Contract,
    ContractError,
    InvocationContext,
    StateView,
    execute_transaction,
    nonce_key,
)
from .crypto import (
    KeyPair,
    PrivateKey,
    PublicKey,
    canonical_digest,
    generate_keypair,
    merkle_root,
    sha256_hex,
    verify_batch,
)
from .execution import (
    ParallelValidationExecutor,
    SerialValidationExecutor,
    ValidationExecutor,
    clear_execution_cache,
    execution_stats,
    make_executor,
    reset_execution_stats,
)
from .identity import (
    Certificate,
    CertificateAuthority,
    Identity,
    MembershipProvider,
)
from .ledger import Ledger, LedgerError, TxExecution
from .messages import (
    DeliverBlock,
    QueryTxStatus,
    SubmitTx,
    SyncHashMsg,
    TxStatusReply,
    VoteMsg,
)
from .network import BlockchainNetwork
from .ordering import OrderingService
from .peer import Peer
from .policy import MAJORITY, ConsensusPolicy, PolicyError, parse_policy
from .sharding import ShardedDeployment, session_shard_key, shard_index_for_key
from .state import Version, VersionedValue, WorldState
from .swaps import (
    CrossShardSwap,
    ShardAssetContract,
    SwapCoordinator,
    SwapState,
    check_conservation,
    scan_assets,
)
from .transaction import (
    Proposal,
    RWSet,
    Transaction,
    TxResult,
    TxValidationCode,
)

__all__ = [
    "Block",
    "BlockHeader",
    "make_genesis_block",
    "BlockchainClient",
    "PendingTx",
    "FabricConfig",
    "Contract",
    "ContractError",
    "InvocationContext",
    "StateView",
    "execute_transaction",
    "nonce_key",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "canonical_digest",
    "generate_keypair",
    "merkle_root",
    "sha256_hex",
    "verify_batch",
    "Certificate",
    "CertificateAuthority",
    "Identity",
    "MembershipProvider",
    "ValidationExecutor",
    "SerialValidationExecutor",
    "ParallelValidationExecutor",
    "make_executor",
    "execution_stats",
    "reset_execution_stats",
    "clear_execution_cache",
    "Ledger",
    "LedgerError",
    "TxExecution",
    "DeliverBlock",
    "QueryTxStatus",
    "SubmitTx",
    "SyncHashMsg",
    "TxStatusReply",
    "VoteMsg",
    "BlockchainNetwork",
    "OrderingService",
    "Peer",
    "MAJORITY",
    "ShardedDeployment",
    "shard_index_for_key",
    "session_shard_key",
    "ShardAssetContract",
    "SwapCoordinator",
    "SwapState",
    "CrossShardSwap",
    "scan_assets",
    "check_conservation",
    "ConsensusPolicy",
    "PolicyError",
    "parse_policy",
    "Version",
    "VersionedValue",
    "WorldState",
    "Proposal",
    "RWSet",
    "Transaction",
    "TxResult",
    "TxValidationCode",
]
