"""Versioned world-state key-value store with MVCC semantics.

Fabric v1.0 validates transactions against the *versions* of the keys
they read: a transaction whose read set mentions a key at version ``v``
is invalidated if the committed version has moved past ``v`` — including
when an earlier transaction *in the same block* wrote the key ("Fabric
acquires a block-level read/write lock on the KVS", §6).  This is the
mechanism the paper's per-player-per-asset KVS split (§6 optimisation i)
exists to sidestep, so we implement it exactly.

Two host-performance properties of this module matter at scale (they do
not change any *simulated* result):

* ``state_hash()`` is **incremental**: every entry carries a digest
  binding ``(key, value, version)``, entries are spread over a fixed set
  of buckets by key hash, and only buckets dirtied since the last call
  are re-hashed.  A sync round after a 5-transaction block therefore
  costs O(written keys), not O(total state) — the difference between 64
  peers re-serialising a 30 000-key state per block and not.
* ``copy()`` is **copy-on-write**: the clone shares the backing dicts
  with the original until either side first mutates, and
  :meth:`overlay` gives an O(1) transactional view for speculative
  execution that never duplicates the KVS at all.

Stored values are treated as immutable: mutate-in-place without a
``put()`` is undefined behaviour (the contract determinism linter
enforces the copy-before-mutate discipline at the source level).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from .crypto import canonical_digest, sha256_hex

__all__ = ["Version", "VersionedValue", "WorldState", "WorldStateOverlay"]

#: Number of hash buckets the incremental state digest spreads keys over.
#: Fixed scheme-wide: two states are equal iff their roots are equal, so
#: every peer must bucket identically.
STATE_HASH_BUCKETS = 64


@dataclass(frozen=True, order=True)
class Version:
    """Height of the last write to a key: (block number, tx index)."""

    block: int
    tx: int

    def to_tuple(self) -> Tuple[int, int]:
        return (self.block, self.tx)


#: Version assigned to keys written by the genesis configuration.
GENESIS_VERSION = Version(0, 0)


@dataclass
class VersionedValue:
    value: Any
    version: Version


def _bucket_of(key: str) -> int:
    return zlib.crc32(key.encode("utf-8")) % STATE_HASH_BUCKETS


def _entry_digest(key: str, entry: VersionedValue) -> str:
    version = entry.version.to_tuple() if entry.version is not None else None
    return canonical_digest([key, entry.value, version])


class WorldState:
    """The world state: a key → (value, version) map.

    Keys are plain strings; the smart-contract layer builds composite keys
    such as ``"asset/<player>/<assetId>"`` (per-player per-asset split) or
    ``"player/<player>"`` (the conflict-prone monolithic layout).
    """

    __slots__ = ("_data", "_buckets", "_bucket_digest", "_dirty", "_root", "_shared")

    def __init__(self) -> None:
        self._data: Dict[str, VersionedValue] = {}
        #: bucket index -> {key: entry digest}
        self._buckets: List[Dict[str, str]] = [
            {} for _ in range(STATE_HASH_BUCKETS)
        ]
        self._bucket_digest: List[Optional[str]] = [None] * STATE_HASH_BUCKETS
        self._dirty: Set[int] = set(range(STATE_HASH_BUCKETS))
        self._root: Optional[str] = None
        #: True while the backing dicts may be shared with a COW clone.
        self._shared = False

    # ------------------------------------------------------------------
    # reads

    def get(self, key: str) -> Optional[Any]:
        entry = self._data.get(key)
        return entry.value if entry is not None else None

    def get_versioned(self, key: str) -> Optional[VersionedValue]:
        return self._data.get(key)

    def version_of(self, key: str) -> Optional[Version]:
        entry = self._data.get(key)
        return entry.version if entry is not None else None

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        return iter(self._data.items())

    def snapshot(self) -> Dict[str, Any]:
        """Plain value snapshot (for assertions and state transfer)."""
        return {k: v.value for k, v in self._data.items()}

    # ------------------------------------------------------------------
    # writes

    def _ensure_private(self) -> None:
        """Detach from any copy-on-write siblings before mutating."""
        if self._shared:
            self._data = dict(self._data)
            self._buckets = [dict(b) for b in self._buckets]
            self._bucket_digest = list(self._bucket_digest)
            self._dirty = set(self._dirty)
            self._shared = False

    def put(self, key: str, value: Any, version: Version) -> None:
        self._ensure_private()
        entry = VersionedValue(value=value, version=version)
        self._data[key] = entry
        bucket = _bucket_of(key)
        self._buckets[bucket][key] = _entry_digest(key, entry)
        self._dirty.add(bucket)
        self._root = None

    def delete(self, key: str) -> None:
        self._ensure_private()
        if self._data.pop(key, None) is not None:
            bucket = _bucket_of(key)
            self._buckets[bucket].pop(key, None)
            self._dirty.add(bucket)
            self._root = None

    # ------------------------------------------------------------------
    # hashing

    def state_hash(self) -> str:
        """Deterministic digest of the full state, used by the ledger-sync
        round: peers agree a block is synchronised when their state hashes
        match.

        Incrementally maintained: per-entry digests are combined into
        per-bucket digests (entries sorted by key), the root is the hash
        of the bucket digest vector, and only dirty buckets are
        recomputed.  Values are scheme-specific (they changed when this
        scheme replaced the full sorted-JSON re-hash) but the only
        operation the platform ever performs on them is *equality*, which
        is preserved: equal states hash equally, diverged states differ.
        """
        if self._root is not None and not self._dirty:
            return self._root
        for index in self._dirty:
            bucket = self._buckets[index]
            if bucket:
                digest = sha256_hex(
                    "\x00".join(bucket[key] for key in sorted(bucket))
                )
            else:
                digest = ""
            self._bucket_digest[index] = digest
        self._dirty.clear()
        self._root = sha256_hex("\x01".join(d or "" for d in self._bucket_digest))
        return self._root

    # ------------------------------------------------------------------
    # copies and views

    def copy(self) -> "WorldState":
        """A fully independent clone, copy-on-write: O(1) now, the first
        mutation on either side pays one flat dict copy."""
        clone = WorldState.__new__(WorldState)
        self._shared = True
        clone._data = self._data
        clone._buckets = self._buckets
        clone._bucket_digest = self._bucket_digest
        clone._dirty = self._dirty
        clone._root = self._root
        clone._shared = True
        return clone

    def overlay(self) -> "WorldStateOverlay":
        """An O(1) transactional view over this state (see
        :class:`WorldStateOverlay`)."""
        return WorldStateOverlay(self)


class WorldStateOverlay:
    """A copy-on-write view over a base :class:`WorldState`.

    Reads fall through to the base; writes and deletes stay local until
    :meth:`commit_to_base`.  This is what speculative execution uses
    while a block's transactions run in order against a consistent
    prefix (the base is the last committed state; earlier in-block
    writes live in the overlay), and what the chaos monitor's shadow
    MVCC replay uses instead of cloning a whole KVS per peer.

    :meth:`put_speculative` records a value *without* bumping its
    version: readers observe the overlaid value at the base's committed
    version, which is exactly Fabric's execution-stage semantics — the
    read set must witness committed versions, and an in-block read-after
    -write is surfaced as a block-level KVS conflict, not hidden by a
    speculative version bump.
    """

    __slots__ = ("_base", "_entries", "_deleted")

    def __init__(self, base: WorldState):
        self._base = base
        self._entries: Dict[str, VersionedValue] = {}
        self._deleted: Set[str] = set()

    # ------------------------------------------------------------------
    # reads (fall through)

    def get(self, key: str) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is not None:
            return entry.value
        if key in self._deleted:
            return None
        return self._base.get(key)

    def get_versioned(self, key: str) -> Optional[VersionedValue]:
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        if key in self._deleted:
            return None
        return self._base.get_versioned(key)

    def version_of(self, key: str) -> Optional[Version]:
        entry = self.get_versioned(key)
        return entry.version if entry is not None else None

    def __contains__(self, key: str) -> bool:
        if key in self._entries:
            return True
        if key in self._deleted:
            return False
        return key in self._base

    def __len__(self) -> int:
        extra = sum(1 for k in self._entries if k not in self._base)
        return len(self._base) - len(self._deleted) + extra

    def keys(self) -> Iterator[str]:
        for key in self._base.keys():
            if key not in self._deleted:
                yield key
        for key in self._entries:
            if key not in self._base:
                yield key

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        for key in self.keys():
            yield key, self.get_versioned(key)

    def snapshot(self) -> Dict[str, Any]:
        return {k: v.value for k, v in self.items()}

    # ------------------------------------------------------------------
    # local writes

    def put(self, key: str, value: Any, version: Version) -> None:
        self._deleted.discard(key)
        self._entries[key] = VersionedValue(value=value, version=version)

    def put_speculative(self, key: str, value: Any) -> None:
        """Overlay ``value`` while keeping the base's committed version
        (None for a fresh key) — the execution-stage read semantics."""
        self._deleted.discard(key)
        base = self._base.get_versioned(key)
        version = base.version if base is not None else None
        self._entries[key] = VersionedValue(value=value, version=version)

    def delete(self, key: str) -> None:
        self._entries.pop(key, None)
        if key in self._base:
            self._deleted.add(key)

    def has_local(self, key: str) -> bool:
        """True iff this overlay wrote or deleted ``key``."""
        return key in self._entries or key in self._deleted

    def local_keys(self) -> Set[str]:
        return set(self._entries) | set(self._deleted)

    # ------------------------------------------------------------------
    # folding

    def commit_to_base(self) -> WorldState:
        """Apply local writes/deletes to the base and reset the overlay."""
        for key in self._deleted:
            self._base.delete(key)
        for key, entry in self._entries.items():
            if entry.version is None:
                raise ValueError(
                    f"speculative write to {key!r} cannot be committed without "
                    "a version; use put(key, value, version)"
                )
            self._base.put(key, entry.value, entry.version)
        self._entries.clear()
        self._deleted.clear()
        return self._base

    def discard(self) -> None:
        """Drop all local writes (abandon the speculation)."""
        self._entries.clear()
        self._deleted.clear()
