"""Versioned world-state key-value store with MVCC semantics.

Fabric v1.0 validates transactions against the *versions* of the keys
they read: a transaction whose read set mentions a key at version ``v``
is invalidated if the committed version has moved past ``v`` — including
when an earlier transaction *in the same block* wrote the key ("Fabric
acquires a block-level read/write lock on the KVS", §6).  This is the
mechanism the paper's per-player-per-asset KVS split (§6 optimisation i)
exists to sidestep, so we implement it exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from .crypto import canonical_digest

__all__ = ["Version", "VersionedValue", "WorldState"]


@dataclass(frozen=True, order=True)
class Version:
    """Height of the last write to a key: (block number, tx index)."""

    block: int
    tx: int

    def to_tuple(self) -> Tuple[int, int]:
        return (self.block, self.tx)


#: Version assigned to keys written by the genesis configuration.
GENESIS_VERSION = Version(0, 0)


@dataclass
class VersionedValue:
    value: Any
    version: Version


class WorldState:
    """The world state: a key → (value, version) map.

    Keys are plain strings; the smart-contract layer builds composite keys
    such as ``"asset/<player>/<assetId>"`` (per-player per-asset split) or
    ``"player/<player>"`` (the conflict-prone monolithic layout).
    """

    def __init__(self) -> None:
        self._data: Dict[str, VersionedValue] = {}

    def get(self, key: str) -> Optional[Any]:
        entry = self._data.get(key)
        return entry.value if entry is not None else None

    def get_versioned(self, key: str) -> Optional[VersionedValue]:
        return self._data.get(key)

    def version_of(self, key: str) -> Optional[Version]:
        entry = self._data.get(key)
        return entry.version if entry is not None else None

    def put(self, key: str, value: Any, version: Version) -> None:
        self._data[key] = VersionedValue(value=value, version=version)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        return iter(self._data.items())

    def snapshot(self) -> Dict[str, Any]:
        """Plain value snapshot (for assertions and state transfer)."""
        return {k: v.value for k, v in self._data.items()}

    def state_hash(self) -> str:
        """Deterministic digest of the full state, used by the ledger-sync
        round: peers agree a block is synchronised when their state hashes
        match."""
        return canonical_digest(
            {k: [v.value, v.version.to_tuple()] for k, v in sorted(self._data.items())}
        )

    def copy(self) -> "WorldState":
        clone = WorldState()
        for k, v in self._data.items():
            clone._data[k] = VersionedValue(value=v.value, version=v.version)
        return clone
