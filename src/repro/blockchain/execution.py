"""Block-validation executors: serial, lane-parallel, and result-shared.

PR 6's :class:`~repro.staticcheck.plan.ConflictPlanner` ships every cut
block with an advisory lane partition — groups of transactions the
static conflict matrix proves touch disjoint keys.  This module makes
validation *act* on those lanes behind a :class:`ValidationExecutor`
interface selected via :class:`~repro.blockchain.config.FabricConfig`:

* :class:`SerialValidationExecutor` — the classic in-order loop;
* :class:`ParallelValidationExecutor` — executes each lane against its
  own speculative overlay (earlier in-lane writes visible, cross-lane
  writes not), optionally on a worker pool, then merges executions back
  into block order.

**Determinism argument.**  Lane-local execution equals serial execution
whenever the lanes' *realized* footprints are pairwise non-interfering:
if no key written by a valid transaction of one lane is read or written
by any transaction of another, then every transaction observes exactly
the overlay contents it would have observed in the serial loop (its own
lane's earlier writes — cross-lane writes cannot reach its reads), and
the block-level conflict check (``touched & written``) decides
identically because the only ``written`` entries it misses are keys the
transaction provably never touches.  The planner's lanes are built from
a sound over-approximation of those footprints (checked continuously by
the fuzz-differential harness), but the executor does not *trust* it:
after the lanes run, a cross-lane audit compares realized written/touched
key sets — including the ``~nonce/...`` replay markers, which the RWSets
record — and any overlap triggers a full serial re-execution.  Malformed
or missing plans degrade to the serial loop the same way, so the merged
result is bit-identical to serial mode even under an unsound plan.  The
differential suite (``tests/test_validation_parallel_diff.py``) and the
golden chaos record pin this end to end.

**Batch signature checking.**  Before execution, the block's certificate
and endorsement signatures are resolved in one amortised
:func:`~repro.blockchain.crypto.verify_batch` pass (one cache sweep, one
write-back) instead of N interleaved probes; per-transaction failure
codes (BAD_CERTIFICATE / BAD_SIGNATURE) are attributed exactly as the
serial checks would.

**Cross-peer result sharing.**  Execution is a pure function of (block,
basis state, contracts, MSP roots, ``verify_signatures``) — the
determinism the whole consensus scheme rests on.  In the simulator every
peer receives the *same* gossiped block object and honest peers evolve
identical states, so N peers re-deriving identical executions is pure
host-side waste.  A bounded process-wide cache keyed by block identity
plus the basis ``state_hash()`` lets the first executing peer share its
results; every other peer gets fresh per-peer :class:`TxExecution`
wrappers (codes are mutated downstream by consensus downgrades) over the
shared immutable RWSets.  Peers whose execution path is instance-patched
(chaos buggy fixtures) are detected and bypass the cache in both
directions.  Simulated costs are charged by ``Peer._compute`` regardless,
so sharing changes wall-clock only, never a simulated result.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Tuple

from .ledger import TxExecution
from .transaction import RWSet, Transaction, TxValidationCode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .block import Block
    from .peer import Peer

__all__ = [
    "ValidationExecutor",
    "SerialValidationExecutor",
    "ParallelValidationExecutor",
    "make_executor",
    "execution_stats",
    "reset_execution_stats",
    "clear_execution_cache",
]


# ----------------------------------------------------------------------
# host-side telemetry counters (never part of simulated results)

_STATS: Dict[str, int] = {}


def reset_execution_stats() -> None:
    _STATS.update(
        cache_hits=0,
        cache_misses=0,
        cache_bypasses=0,
        lane_blocks=0,
        lane_fallbacks=0,
        degraded_plans=0,
        serial_blocks=0,
        batched_signatures=0,
    )


reset_execution_stats()


def execution_stats() -> Dict[str, int]:
    """A snapshot of the executor's host-side counters."""
    return dict(_STATS)


# ----------------------------------------------------------------------
# cross-peer block-execution cache

#: key ``(id(block), id(msp), basis_state_hash, verify_signatures)`` →
#: ``(block, msp, contract names, contract classes, [(rwset, code)...])``.
#: The entry retains the block/MSP/class objects both to pin their ids
#: against reuse and to re-check identity on every hit.
_EXEC_CACHE: Dict[tuple, tuple] = {}
_EXEC_CACHE_MAX = 4096


def clear_execution_cache() -> None:
    """Drop all shared execution results (tests and benchmarks)."""
    _EXEC_CACHE.clear()


def _is_patched(peer: "Peer") -> bool:
    """True when the peer's execution path was instance- or subclass-
    patched (chaos buggy fixtures): its results may differ from the pure
    function of (block, state), so it must neither read nor populate the
    shared cache, and the batched signature pre-pass must stand aside."""
    if "_execute_one" in peer.__dict__:
        return True
    cls = type(peer)
    baseline = getattr(cls, "_baseline_execute_one", None)
    return baseline is None or cls._execute_one is not baseline


# ----------------------------------------------------------------------
# shared execution steps

def _signature_precheck(
    peer: "Peer", transactions: Sequence[Transaction]
) -> Optional[List[Optional[str]]]:
    """Resolve certificate + endorsement signatures for a whole block in
    one amortised batch pass.

    Returns one entry per transaction: a failure code
    (``BAD_CERTIFICATE`` / ``BAD_SIGNATURE``) or None when the signature
    checks pass — exactly the codes the serial per-transaction checks
    would produce, in the same precedence order.  ``None`` (no list) when
    signature verification is disabled.
    """
    if not peer.config.verify_signatures:
        return None
    cert_ok = peer.msp.validate_batch([tx.certificate for tx in transactions])
    # Endorsement signatures, honouring each transaction's own memo.
    pending: List[int] = []
    triples = []
    sig_ok: List[bool] = [False] * len(transactions)
    for i, tx in enumerate(transactions):
        memo = getattr(tx, "_sig_memo", None)
        if memo is not None:
            sig_ok[i] = memo
        else:
            pending.append(i)
            triples.append(
                (tx.certificate.public_key, tx.proposal.digest(), tx.signature)
            )
    if triples:
        from .crypto import verify_batch

        _STATS["batched_signatures"] += len(triples)
        for i, ok in zip(pending, verify_batch(triples)):
            sig_ok[i] = ok
            transactions[i]._sig_memo = ok
    codes: List[Optional[str]] = []
    for i in range(len(transactions)):
        if not cert_ok[i]:
            codes.append(TxValidationCode.BAD_CERTIFICATE)
        elif not sig_ok[i]:
            codes.append(TxValidationCode.BAD_SIGNATURE)
        else:
            codes.append(None)
    return codes


def _run_serial(
    peer: "Peer",
    transactions: Sequence[Transaction],
    precheck: Optional[List[Optional[str]]],
) -> List[TxExecution]:
    """The classic in-order loop over one speculative overlay."""
    overlay = peer.ledger.state.overlay()
    written: Set[str] = set()
    executions: List[TxExecution] = []
    for i, tx in enumerate(transactions):
        code = precheck[i] if precheck is not None else None
        if code is not None:
            execution = TxExecution(rwset=RWSet(), code=code)
        else:
            execution = peer._execute_one(tx, overlay, written, True)
        executions.append(execution)
        if execution.code == TxValidationCode.VALID:
            for key, value in execution.rwset.writes:
                overlay.put_speculative(key, value)
                written.add(key)
    return executions


def _run_patched(
    peer: "Peer", transactions: Sequence[Transaction]
) -> List[TxExecution]:
    """Legacy per-transaction loop for instance-patched peers: the patch
    expects the historical 3-argument ``_execute_one`` call (its own
    signature checks included) and must see every transaction."""
    overlay = peer.ledger.state.overlay()
    written: Set[str] = set()
    executions: List[TxExecution] = []
    for tx in transactions:
        execution = peer._execute_one(tx, overlay, written)
        executions.append(execution)
        if execution.code == TxValidationCode.VALID:
            for key, value in execution.rwset.writes:
                overlay.put_speculative(key, value)
                written.add(key)
    return executions


def _run_lane(
    peer: "Peer",
    lane: Sequence[int],
    transactions: Sequence[Transaction],
    precheck: Optional[List[Optional[str]]],
) -> Tuple[List[Tuple[int, TxExecution]], Set[str], Set[str]]:
    """Execute one lane against a lane-local overlay.

    Returns ``(indexed executions, realized touched keys, keys written by
    valid transactions)`` — the audit inputs for the determinism check.
    """
    overlay = peer.ledger.state.overlay()
    written: Set[str] = set()
    touched: Set[str] = set()
    out: List[Tuple[int, TxExecution]] = []
    for i in lane:
        tx = transactions[i]
        code = precheck[i] if precheck is not None else None
        if code is not None:
            execution = TxExecution(rwset=RWSet(), code=code)
        else:
            execution = peer._execute_one(tx, overlay, written, True)
            touched.update(execution.rwset.read_keys())
            touched.update(execution.rwset.write_keys())
        out.append((i, execution))
        if execution.code == TxValidationCode.VALID:
            for key, value in execution.rwset.writes:
                overlay.put_speculative(key, value)
                written.add(key)
    return out, touched, written


def _valid_lanes(plan: Any, n_txs: int) -> Optional[List[List[int]]]:
    """Validate advisory plan metadata into a usable lane partition.

    Returns None unless ``plan["lanes"]`` is a list of lists of ints that
    partitions ``range(n_txs)`` exactly, with each lane in strictly
    increasing (block) order — anything else degrades to serial.
    """
    if not isinstance(plan, dict):
        return None
    lanes = plan.get("lanes")
    if not isinstance(lanes, list):
        return None
    seen: Set[int] = set()
    out: List[List[int]] = []
    for lane in lanes:
        if not isinstance(lane, list) or not lane:
            return None
        previous = -1
        for index in lane:
            if not isinstance(index, int) or isinstance(index, bool):
                return None
            if index <= previous or index < 0 or index >= n_txs or index in seen:
                return None
            seen.add(index)
            previous = index
        out.append(list(lane))
    if len(seen) != n_txs:
        return None
    return out


# ----------------------------------------------------------------------
# executors

class ValidationExecutor:
    """Strategy interface for executing one block's transactions.

    ``execute_block`` owns the cross-peer result cache and the patched-
    peer detection; subclasses implement :meth:`_execute` with the actual
    execution strategy.  Whatever the strategy, the returned executions
    are bit-identical to the serial in-order loop.
    """

    mode = "abstract"

    def execute_block(self, peer: "Peer", block: "Block") -> List[TxExecution]:
        patched = _is_patched(peer)
        if patched or not peer.config.shared_execution_cache:
            if patched:
                _STATS["cache_bypasses"] += 1
                return _run_patched(peer, block.transactions)
            return self._execute(peer, block)
        names = tuple(sorted(peer.contracts))
        classes = tuple(type(peer.contracts[name]) for name in names)
        key = (
            id(block),
            id(peer.msp),
            peer.ledger.state_hash(),
            peer.config.verify_signatures,
        )
        entry = _EXEC_CACHE.get(key)
        if (
            entry is not None
            and entry[0] is block
            and entry[1] is peer.msp
            and entry[2] == names
            and entry[3] == classes
        ):
            _STATS["cache_hits"] += 1
            return [TxExecution(rwset=rwset, code=code) for rwset, code in entry[4]]
        _STATS["cache_misses"] += 1
        executions = self._execute(peer, block)
        if len(_EXEC_CACHE) >= _EXEC_CACHE_MAX:
            _EXEC_CACHE.clear()
        _EXEC_CACHE[key] = (
            block,
            peer.msp,
            names,
            classes,
            [(e.rwset, e.code) for e in executions],
        )
        return executions

    def _execute(self, peer: "Peer", block: "Block") -> List[TxExecution]:
        raise NotImplementedError


class SerialValidationExecutor(ValidationExecutor):
    """The classic strategy: all transactions in block order, one overlay."""

    mode = "serial"

    def _execute(self, peer: "Peer", block: "Block") -> List[TxExecution]:
        _STATS["serial_blocks"] += 1
        transactions = block.transactions
        return _run_serial(peer, transactions, _signature_precheck(peer, transactions))


class ParallelValidationExecutor(ValidationExecutor):
    """Lane-parallel strategy consuming the planner's ``Block.plan``.

    Lanes run concurrently on a shared worker pool (sized by
    ``FabricConfig.validation_workers``; 0 = one worker per core, capped
    at 4) when more than one worker is available, inline otherwise — the
    merge, audit and results are identical either way.
    """

    mode = "parallel"

    def __init__(self, workers: int = 0):
        if workers <= 0:
            workers = min(4, os.cpu_count() or 1)
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _get_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-validate"
            )
        return self._pool

    def _execute(self, peer: "Peer", block: "Block") -> List[TxExecution]:
        transactions = block.transactions
        lanes = _valid_lanes(getattr(block, "plan", None), len(transactions))
        precheck = _signature_precheck(peer, transactions)
        if lanes is None:
            _STATS["degraded_plans"] += 1
            return _run_serial(peer, transactions, precheck)
        if len(lanes) <= 1:
            _STATS["serial_blocks"] += 1
            return _run_serial(peer, transactions, precheck)

        _STATS["lane_blocks"] += 1
        if self.workers > 1:
            pool = self._get_pool()
            lane_results = list(
                pool.map(
                    lambda lane: _run_lane(peer, lane, transactions, precheck), lanes
                )
            )
        else:
            lane_results = [
                _run_lane(peer, lane, transactions, precheck) for lane in lanes
            ]

        # Determinism audit over realized footprints: a key written by a
        # valid transaction in one lane must not be touched by any other
        # lane, otherwise serial order could have produced different
        # reads or conflict verdicts — re-execute serially.
        for i, (_, _, written_i) in enumerate(lane_results):
            if not written_i:
                continue
            for j, (_, touched_j, _) in enumerate(lane_results):
                if i != j and written_i & touched_j:
                    _STATS["lane_fallbacks"] += 1
                    return _run_serial(peer, transactions, precheck)

        merged: List[Optional[TxExecution]] = [None] * len(transactions)
        for indexed, _, _ in lane_results:
            for index, execution in indexed:
                merged[index] = execution
        # _valid_lanes guaranteed a partition, so every slot is filled.
        return [e for e in merged if e is not None]


def make_executor(config) -> ValidationExecutor:
    """The executor selected by ``FabricConfig``."""
    if config.parallel_validation:
        return ParallelValidationExecutor(workers=config.validation_workers)
    return SerialValidationExecutor()
