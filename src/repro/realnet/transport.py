"""The simnet ``Network`` surface over real asyncio TCP sockets.

Wire format
    One TCP connection per ``(src, dst)`` channel (so per-channel FIFO
    holds exactly as it does on simnet, where it models Fabric's gRPC
    over TCP).  Each frame is a 4-byte big-endian length prefix followed
    by ``repro.blockchain.codec.encode((src_name, dst_name, payload))``
    — the closed-set binary codec from PR 9, so only protocol messages
    can cross the wire.  Oversized, truncated or undecodable frames
    close the connection and are counted; a reader can error, never
    hang.

Connection management
    Channels connect lazily on first send and reconnect with exponential
    backoff (``retry_base_ms`` doubling to ``retry_max_ms``, at most
    ``max_connect_attempts`` per delivery attempt).  Frames queued on a
    channel that exhausts its retries are dropped and counted — the same
    "application protocols own the timeouts" semantics simnet gives a
    down host.

Peer-crash semantics
    ``condition(name).down = True`` (what ``Peer.crash()`` and the chaos
    injector set) closes the host's listening socket and resets every
    connection touching it; ``down = False`` re-listens on a fresh port
    and the address book is updated, so reconnecting channels find the
    revived peer.  :class:`RealHostCondition` carries that side effect
    on the ``down`` setter, keeping the callers untouched.

Fault injection (netem-style shim)
    The ``fault_injector`` hook has the exact simnet contract — called
    ``(msg, deliver_at) -> [times]`` per otherwise-deliverable message;
    empty list drops, several times duplicate, later times delay — but
    runs at the *sender* before the socket write, like a ``tc netem``
    qdisc on the egress interface.  Partitions and ingress conditions
    (``extra_ingress_ms``, ``ingress_drop_rate``) are enforced around
    the socket ops the same way, so `repro.chaos` schedules run
    unmodified on real sockets.
"""

from __future__ import annotations

import asyncio
import random
import struct
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..blockchain.codec import CodecError, decode, encode
from ..simnet.latency import INTERNET_US, LatencyProfile
from ..simnet.topology import Host, Topology
from ..simnet.transport import Message, NetworkStats
from .clock import WallClock

__all__ = ["RealNetwork", "RealHostCondition", "FrameError"]

_LEN = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed frame arrived: bad length, bad codec, bad shape."""


class RealHostCondition:
    """Per-host fault state whose ``down`` flag actuates the sockets.

    Field-compatible with :class:`~repro.simnet.transport.HostCondition`
    (``down`` / ``extra_ingress_ms`` / ``ingress_drop_rate``), but
    ``down`` is a property: flipping it closes or re-opens the host's
    listener and connections, which is what "crash" *means* on a real
    transport.
    """

    __slots__ = ("_net", "_name", "_down", "extra_ingress_ms", "ingress_drop_rate")

    def __init__(self, net: "RealNetwork", name: str):
        self._net = net
        self._name = name
        self._down = False
        self.extra_ingress_ms = 0.0
        self.ingress_drop_rate = 0.0

    @property
    def down(self) -> bool:
        return self._down

    @down.setter
    def down(self, value: bool) -> None:
        value = bool(value)
        if value == self._down:
            return
        self._down = value
        self._net._on_down_changed(self._name, value)


class _Endpoint:
    """A registered host's listener state."""

    __slots__ = ("host", "server", "port", "inbound")

    def __init__(self, host: Host):
        self.host = host
        self.server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        #: Writers of accepted inbound connections (closed on crash).
        self.inbound: Set[asyncio.StreamWriter] = set()


class _Channel:
    """One ordered (src, dst) frame channel: queue + connection."""

    __slots__ = (
        "src", "dst", "queue", "writer", "task",
        "connect_attempts", "last_backoff_ms",
    )

    def __init__(self, src: str, dst: str):
        self.src = src
        self.dst = dst
        self.queue: deque = deque()
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional[asyncio.Task] = None
        #: Failed connect attempts over the channel's lifetime (tests and
        #: the soak record read this to see backoff at work).
        self.connect_attempts = 0
        self.last_backoff_ms = 0.0


class RealNetwork:
    """Drop-in for :class:`~repro.simnet.transport.Network` over TCP.

    The latency ``profile`` is accepted for interface parity and used
    only for placement metadata (``profile.region_pool``): on realnet,
    latency comes from the actual kernel and wire, not a model.  Call
    :meth:`start` after registering all hosts and before :meth:`run`;
    hosts registered later (late clients) are brought up on the fly.
    """

    #: Frames above this are protocol errors, not allocations (16 MiB).
    max_frame_bytes = 16 * 1024 * 1024
    retry_base_ms = 15.0
    retry_max_ms = 250.0
    max_connect_attempts = 8

    def __init__(
        self,
        clock: Optional[WallClock] = None,
        profile: Optional[LatencyProfile] = None,
        seed: int = 0,
        bind_host: str = "127.0.0.1",
    ) -> None:
        self.scheduler = clock if clock is not None else WallClock()
        self.profile = profile if profile is not None else INTERNET_US
        self.rng = random.Random(seed)
        self.topology = Topology()
        self.stats = NetworkStats()
        self.backend = "realnet"
        self._bind_host = bind_host
        self._conditions: Dict[str, RealHostCondition] = {}
        self._endpoints: Dict[str, _Endpoint] = {}
        #: name -> (host, port): where frames for that name connect to.
        #: Local listeners register themselves; :meth:`add_remote` adds
        #: peers living in other processes.
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._channels: Dict[Tuple[str, str], _Channel] = {}
        self._remote_stubs: Dict[str, Host] = {}
        self._partition_of: Optional[Dict[str, int]] = None
        self._fault_injector: Optional[Callable[[Message, float], List[float]]] = None
        #: Frames accepted for transmission but not yet written out (or
        #: dropped): the transport's contribution to "not idle yet".
        self._inflight = 0
        self.frame_errors = 0
        self.connects = 0
        self._started = False
        self._closed = False
        self.on_stats_event: Optional[Callable[[str, Dict[str, Any]], None]] = None
        self.telemetry = None
        self.scheduler.add_busy_check(self._busy)

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "RealNetwork":
        """Bind a listener for every registered (not-down) host."""
        self._started = True
        for name in list(self._endpoints):
            if not self._conditions[name]._down:
                self._call_async(self._open_endpoint(name))
        return self

    def close(self, close_clock: bool = True) -> None:
        """Tear down every socket (and, by default, the clock's loop)."""
        if self._closed:
            return
        self._closed = True
        self._call_async(self._shutdown())
        if close_clock:
            self.scheduler.close()

    async def _shutdown(self) -> None:
        for channel in self._channels.values():
            self._reset_channel(channel, drop_queue=True)
            if channel.task is not None:
                channel.task.cancel()
        for name in list(self._endpoints):
            await self._close_endpoint(name)
        # Reap the reader tasks of connections we just closed so the
        # loop shuts down without pending-task warnings.
        current = asyncio.current_task()
        pending = [t for t in asyncio.all_tasks() if t is not current]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def _call_async(self, coro) -> None:
        """Run ``coro`` now (loop idle) or hand it to the running loop."""
        loop = self.scheduler.loop
        if loop.is_running():
            loop.create_task(coro)
        elif not loop.is_closed():
            loop.run_until_complete(coro)

    # ------------------------------------------------------------------
    # registration

    def register(self, host: Host) -> Host:
        """Attach ``host``: condition, address-book entry and listener."""
        self.topology.add(host)
        host.network = self
        cond = RealHostCondition(self, host.name)
        self._conditions[host.name] = cond
        host._condition = cond
        self._endpoints[host.name] = _Endpoint(host)
        if self._started:
            self._call_async(self._open_endpoint(host.name))
        return host

    def add_remote(self, name: str, host: str, port: int) -> None:
        """Route frames for ``name`` to another process's listener."""
        self._addresses[name] = (host, port)

    def condition(self, host_name: str) -> RealHostCondition:
        return self._conditions[host_name]

    def host(self, name: str) -> Host:
        return self.topology.get(name)

    @property
    def fault_injector(self) -> Optional[Callable[[Message, float], List[float]]]:
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(
        self, fn: Optional[Callable[[Message, float], List[float]]]
    ) -> None:
        self._fault_injector = fn

    def port_of(self, name: str) -> Optional[int]:
        """The host's current listening port (None while down/unbound)."""
        addr = self._addresses.get(name)
        return addr[1] if addr is not None else None

    # ------------------------------------------------------------------
    # listeners

    async def _open_endpoint(self, name: str, port: int = 0) -> None:
        ep = self._endpoints.get(name)
        if ep is None or ep.server is not None or self._conditions[name]._down:
            return
        server = await asyncio.start_server(
            lambda r, w: self._serve_conn(name, r, w),
            host=self._bind_host, port=port,
        )
        ep.server = server
        ep.port = server.sockets[0].getsockname()[1]
        self._addresses[name] = (self._bind_host, ep.port)

    async def _close_endpoint(self, name: str, forget_address: bool = True) -> None:
        ep = self._endpoints.get(name)
        if ep is None:
            return
        if forget_address:
            self._addresses.pop(name, None)
        if ep.server is not None:
            ep.server.close()
            ep.server = None
        for writer in list(ep.inbound):
            writer.close()
        ep.inbound.clear()

    def _on_down_changed(self, name: str, down: bool) -> None:
        """Crash/restart actuation: map the flag onto socket state."""
        if name not in self._endpoints:
            return
        if down:
            for channel in self._channels.values():
                if channel.src == name or channel.dst == name:
                    self._reset_channel(channel, drop_queue=True)
            self._call_async(self._close_endpoint(name))
        elif self._started and not self._closed:
            self._call_async(self._open_endpoint(name))

    def suspend_listener(self, name: str) -> None:
        """Close the host's listener but keep its address registered —
        connects get ECONNREFUSED and back off until
        :meth:`resume_listener` re-binds the same port.  The transport
        analogue of a paused (SIGSTOP'd) process, and the hook the
        retry/backoff tests drive.
        """
        ep = self._endpoints[name]
        self._call_async(self._close_endpoint(name, forget_address=False))
        self._addresses[name] = (self._bind_host, ep.port)

    def resume_listener(self, name: str) -> None:
        """Re-bind a suspended host's listener on its recorded port."""
        ep = self._endpoints[name]
        port = ep.port if ep.port is not None else 0
        self._call_async(self._open_endpoint(name, port=port))

    # ------------------------------------------------------------------
    # sending

    def send(self, src: Host, dst: Host, payload: Any, size_bytes: int = 256) -> None:
        """Frame ``payload`` and hand it to the (src, dst) channel.

        The pre-wire checks mirror simnet ``Network.send`` exactly:
        down hosts and partitions drop at the sender, then the fault
        injector (if any) decides drop/duplicate/delay — all before the
        codec and the socket, netem-style.
        """
        stats = self.stats
        src_name = src.name
        dst_name = dst.name
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes
        src_cond = self._conditions.get(src_name)
        dst_cond = self._conditions.get(dst_name)
        if (src_cond is not None and src_cond._down) or (
            dst_cond is not None and dst_cond._down
        ):
            stats.messages_dropped += 1
            return
        if self._partition_of is not None:
            if self._partition_of.get(src_name) != self._partition_of.get(dst_name):
                stats.messages_dropped += 1
                stats.messages_dropped_partition += 1
                return
        if self._fault_injector is not None:
            now = self.scheduler.now
            msg = Message(src_name, dst_name, payload, size_bytes, now)
            times = self._fault_injector(msg, now)
            if not times:
                stats.messages_dropped += 1
                stats.messages_dropped_fault += 1
                return
            if len(times) > 1:
                stats.messages_duplicated += len(times) - 1
            if max(times) > now:
                stats.messages_delayed_fault += 1
            for when in times:
                if when <= now:
                    self._transmit(src_name, dst_name, msg.payload)
                else:
                    self.scheduler.call_at_anon(
                        when, self._transmit, src_name, dst_name, msg.payload
                    )
            return
        self._transmit(src_name, dst_name, payload)

    def send_many(
        self, src: Host, dsts: Sequence[Host], payload: Any, size_bytes: int = 256
    ) -> None:
        """Broadcast = per-destination sends; TCP does the fan-out."""
        for dst in dsts:
            self.send(src, dst, payload, size_bytes=size_bytes)

    def _transmit(self, src_name: str, dst_name: str, payload: Any) -> None:
        data = encode((src_name, dst_name, payload))
        channel = self._channels.get((src_name, dst_name))
        if channel is None:
            channel = _Channel(src_name, dst_name)
            self._channels[(src_name, dst_name)] = channel
        channel.queue.append(data)
        self._inflight += 1
        if channel.task is None or channel.task.done():
            loop = self.scheduler.loop
            if not loop.is_closed():
                channel.task = loop.create_task(self._drain_channel(channel))

    async def _drain_channel(self, channel: _Channel) -> None:
        """Write the channel's queue out in order, reconnecting as needed."""
        write_failures = 0
        while channel.queue:
            src_cond = self._conditions.get(channel.src)
            dst_cond = self._conditions.get(channel.dst)
            if (src_cond is not None and src_cond._down) or (
                dst_cond is not None and dst_cond._down
            ):
                self._drop_channel_queue(channel)
                return
            if channel.writer is None:
                if not await self._connect_channel(channel):
                    self._drop_channel_queue(channel)
                    return
            data = channel.queue[0]
            try:
                writer = channel.writer
                writer.write(_LEN.pack(len(data)))
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                self._reset_channel(channel, drop_queue=False)
                write_failures += 1
                if write_failures > self.max_connect_attempts:
                    self._drop_channel_queue(channel)
                    return
                continue
            channel.queue.popleft()
            self._inflight -= 1

    async def _connect_channel(self, channel: _Channel) -> bool:
        """Exponential-backoff connect; False once retries are exhausted."""
        backoff = self.retry_base_ms
        for _attempt in range(self.max_connect_attempts):
            dst_cond = self._conditions.get(channel.dst)
            if dst_cond is not None and dst_cond._down:
                return False
            addr = self._addresses.get(channel.dst)
            if addr is not None:
                try:
                    _reader, writer = await asyncio.open_connection(addr[0], addr[1])
                    channel.writer = writer
                    self.connects += 1
                    return True
                except (ConnectionError, OSError):
                    pass
            channel.connect_attempts += 1
            channel.last_backoff_ms = backoff
            await asyncio.sleep(backoff / 1000.0)
            backoff = min(backoff * 2.0, self.retry_max_ms)
        return False

    def _reset_channel(self, channel: _Channel, drop_queue: bool) -> None:
        if channel.writer is not None:
            channel.writer.close()
            channel.writer = None
        if drop_queue:
            self._drop_channel_queue(channel)

    def _drop_channel_queue(self, channel: _Channel) -> None:
        dropped = len(channel.queue)
        if dropped:
            channel.queue.clear()
            self._inflight -= dropped
            self.stats.messages_dropped += dropped

    def _busy(self) -> bool:
        return self._inflight > 0

    def _raise_in_run(self, exc: BaseException) -> None:
        """Schedule ``exc`` to re-raise inside the clock pump, so it
        surfaces from ``run()`` / ``run_until_idle()`` like a scheduler
        callback exception would on simnet."""
        def reraise() -> None:
            raise exc
        self.scheduler.call_at_anon(self.scheduler.now, reraise)

    # ------------------------------------------------------------------
    # receiving

    async def _serve_conn(
        self, listener: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Per-inbound-connection read loop.

        Every exit path is an explicit error or EOF — a malformed frame
        (bad length, bad codec, bad shape) closes the connection rather
        than leaving the reader blocked mid-frame.
        """
        ep = self._endpoints.get(listener)
        if ep is not None:
            ep.inbound.add(writer)
        try:
            while True:
                header = await reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                if length > self.max_frame_bytes:
                    raise FrameError(f"frame length {length} exceeds cap")
                data = await reader.readexactly(length)
                self._on_frame(data)
                self.scheduler.kick()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # EOF or peer reset: normal connection teardown
        except asyncio.CancelledError:
            pass  # network shutdown reaps readers; exit is the response
        except (FrameError, CodecError):
            self.frame_errors += 1
        except Exception as exc:
            # An application handler raised.  On simnet that exception
            # propagates out of ``run()``; re-raise it from the clock
            # queue so realnet keeps the same contract instead of the
            # error dying inside an asyncio reader task.
            self._raise_in_run(exc)
        finally:
            if ep is not None:
                ep.inbound.discard(writer)
            writer.close()

    def _on_frame(self, data: bytes) -> None:
        try:
            frame = decode(data)
        except CodecError as exc:
            raise FrameError(f"undecodable frame: {exc}") from exc
        if not isinstance(frame, (list, tuple)) or len(frame) != 3:
            raise FrameError(f"bad frame shape: {type(frame).__name__}")
        src_name, dst_name, payload = frame
        if not isinstance(src_name, str) or not isinstance(dst_name, str):
            raise FrameError("frame addresses must be strings")
        cond = self._conditions.get(dst_name)
        if cond is not None:
            if cond._down:
                self.stats.messages_dropped += 1
                return
            if cond.ingress_drop_rate and self.rng.random() < cond.ingress_drop_rate:
                self.stats.messages_dropped += 1
                return
            if cond.extra_ingress_ms > 0.0:
                self.scheduler.call_at_anon(
                    self.scheduler.now + cond.extra_ingress_ms,
                    self._deliver, src_name, dst_name, payload,
                )
                return
        self._deliver(src_name, dst_name, payload)

    def _deliver(self, src_name: str, dst_name: str, payload: Any) -> None:
        if dst_name not in self.topology:
            self.stats.messages_dropped += 1
            return
        dst = self.topology.get(dst_name)
        cond = self._conditions.get(dst_name)
        if cond is not None and cond._down:
            self.stats.messages_dropped += 1
            return
        if src_name in self.topology:
            src: Host = self.topology.get(src_name)
        else:
            # A sender from another process: a stub carries its name so
            # replies route back through the address book.
            src = self._remote_stubs.get(src_name)  # type: ignore[assignment]
            if src is None:
                src = Host(src_name)
                src.network = self
                self._remote_stubs[src_name] = src
        self.stats.messages_delivered += 1
        dst.handle_message(src, payload)

    # ------------------------------------------------------------------
    # partitions

    def partition(self, *groups) -> None:
        """Sender-side partition, same contract as simnet ``partition``."""
        mapping: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                mapping[name] = index
        self._partition_of = mapping
        self.stats.partitions_started += 1
        self._emit("partition", {
            "t": self.scheduler.now,
            "groups": [sorted(group) for group in groups],
        })

    def heal(self) -> None:
        was_active = self._partition_of is not None
        self._partition_of = None
        if was_active:
            self.stats.partitions_healed += 1
            self._emit("heal", {"t": self.scheduler.now})

    @property
    def partitioned(self) -> bool:
        return self._partition_of is not None

    def _emit(self, event: str, detail: Dict[str, Any]) -> None:
        if self.on_stats_event is not None:
            self.on_stats_event(event, detail)

    # ------------------------------------------------------------------
    # convenience

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.scheduler.run(until=until, max_events=max_events)

    def run_until_idle(
        self,
        max_events: int = 10_000_000,
        max_wall_ms: Optional[float] = None,
    ) -> None:
        self.scheduler.run_until_idle(
            max_events=max_events, max_wall_ms=max_wall_ms
        )
