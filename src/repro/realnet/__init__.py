"""Real-transport backend: the simnet interface over asyncio TCP.

``repro.simnet`` simulates the network deterministically; this package
runs the *same* peers, ordering service, gossip and client shim over
real localhost (or multi-process) sockets behind the same two
interfaces:

* :class:`WallClock` — the :class:`~repro.simnet.clock.Scheduler`
  contract (``call_at`` / ``call_after`` / ``call_at_anon``, monotone
  ``now`` in milliseconds, ``run`` / ``run_until_idle``) driven by wall
  time on an asyncio event loop;
* :class:`RealNetwork` — the :class:`~repro.simnet.transport.Network`
  surface (``register`` / ``send`` / ``send_many`` / ``condition`` /
  ``partition`` / ``fault_injector`` / ``stats``) over length-prefixed
  :mod:`repro.blockchain.codec` frames on per-channel TCP connections.

:func:`make_network` is the backend factory the deployment constructors
use; ``FabricConfig(backend="realnet")`` routes through it.  DESIGN.md
§15 documents which determinism guarantees survive the move to real
sockets (none of the *safety* invariants depend on determinism — the
chaos :class:`~repro.chaos.invariants.InvariantMonitor` runs unchanged
on either backend).
"""

from __future__ import annotations

from typing import Optional

from .clock import WallClock
from .metrics_http import MetricsServer
from .transport import FrameError, RealHostCondition, RealNetwork

__all__ = [
    "WallClock",
    "RealNetwork",
    "RealHostCondition",
    "FrameError",
    "MetricsServer",
    "make_network",
    "BACKENDS",
]

#: The interchangeable transport backends (see DESIGN.md §15).
BACKENDS = ("simnet", "realnet")


def make_network(
    backend: str,
    profile=None,
    seed: int = 0,
    clock: Optional[WallClock] = None,
):
    """Construct a transport backend by name.

    ``simnet`` returns the deterministic discrete-event
    :class:`~repro.simnet.transport.Network`; ``realnet`` returns a
    :class:`RealNetwork` on a fresh (or supplied) :class:`WallClock`.
    Both satisfy the same interface, so everything above the transport
    boundary — peers, ordering, gossip, shards, clients — runs
    unmodified on either.
    """
    if backend == "simnet":
        from ..simnet.transport import Network

        return Network(profile=profile, seed=seed)
    if backend == "realnet":
        return RealNetwork(clock=clock, profile=profile, seed=seed)
    raise ValueError(f"unknown transport backend {backend!r} (known: {BACKENDS})")
