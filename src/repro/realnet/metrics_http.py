"""A live ``/metrics`` endpoint for the realnet backend.

On simnet the Prometheus exporter writes text files after the run; on
realnet the run *is* wall time, so the same
:func:`repro.telemetry.export.prometheus_text` output is served live
from the clock's asyncio loop — scrapeable with a plain ``curl`` while
a soak is in flight.  The server is deliberately minimal (HTTP/1.0,
two routes, connection-per-request): it is an observability tap, not a
web framework.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..telemetry.export import prometheus_text
from .clock import WallClock

__all__ = ["MetricsServer", "scrape"]


class MetricsServer:
    """Serves ``GET /metrics`` (Prometheus 0.0.4 text) and ``/healthz``.

    ``source`` is anything :func:`prometheus_text` accepts — a
    :class:`~repro.telemetry.Telemetry` or a bare ``MetricsRegistry``.
    """

    def __init__(
        self,
        source,
        clock: WallClock,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.source = source
        self.clock = clock
        self.host = host
        self.port = port  # 0 until started; then the bound port
        self._server: Optional[asyncio.AbstractServer] = None

    def start(self) -> "MetricsServer":
        loop = self.clock.loop
        if loop.is_running():
            loop.create_task(self._start())
        else:
            loop.run_until_complete(self._start())
        return self

    async def _start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            # Drain headers until the blank line; ignore their content.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            if path == "/metrics":
                body = prometheus_text(self.source).encode("utf-8")
                status = b"200 OK"
                ctype = b"text/plain; version=0.0.4; charset=utf-8"
            elif path == "/healthz":
                body = b"ok\n"
                status = b"200 OK"
                ctype = b"text/plain; charset=utf-8"
            else:
                body = b"not found\n"
                status = b"404 Not Found"
                ctype = b"text/plain; charset=utf-8"
            writer.write(
                b"HTTP/1.0 " + status + b"\r\n"
                b"Content-Type: " + ctype + b"\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()


async def scrape(
    host: str, port: int, path: str = "/metrics", timeout_s: float = 10.0
) -> str:
    """A real HTTP GET against a live endpoint; returns the body.

    The soak harness scrapes its own ``/metrics`` mid-run with this —
    the artifact CI uploads is genuinely what a Prometheus scraper
    would have seen, not an after-the-fact export.  The whole exchange
    is bounded by ``timeout_s`` (a Prometheus scrape deadline): a
    saturated server yields a failed scrape, never a stuck task.
    """

    async def _get() -> bytes:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            return await reader.read(-1)
        finally:
            writer.close()

    raw = await asyncio.wait_for(_get(), timeout=timeout_s)
    text = raw.decode("utf-8", errors="replace")
    if "\r\n\r\n" in text:
        return text.split("\r\n\r\n", 1)[1]
    return text
