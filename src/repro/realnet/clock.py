"""Wall-clock scheduler satisfying the simnet ``Scheduler`` contract.

:class:`WallClock` is the realnet backend's clock: ``now`` is real
milliseconds since construction (monotonic — ``time.monotonic`` based,
immune to NTP steps), and scheduled callbacks fire from an asyncio
event loop so socket I/O interleaves with timer work in one thread.

The engine's hot paths do not go through ``call_at``: ``peer._compute``
and the transports push ``(when, seq, fn, args)`` tuples straight onto
``scheduler._queue`` and bump ``_seq`` / ``_live`` themselves (see
``repro.simnet.transport``).  :class:`WallClock` therefore keeps the
*exact same* internal shapes — a ``heapq`` of ``(when, seq, timer)`` /
``(when, seq, fn, args)`` entries, integer ``_seq`` and ``_live``
counters, ``_now`` readable as an attribute — so those inlined pushes
land in the wall-clock queue unchanged.

Contract differences from the deterministic ``Scheduler``, both forced
by wall time (DESIGN.md §15):

* ``call_at`` with a ``when`` in the past is *allowed* and fires
  promptly (wall time has already moved on by the time a callback runs;
  rejecting stale deadlines would make every timer a race);
* ``run_until_idle`` treats "idle" as: no live queue entries, no
  transport-reported in-flight work (see :meth:`add_busy_check`), held
  for a grace window — frames sitting in kernel socket buffers are
  invisible to the queue, and the grace window covers their flight.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Any, Callable, List, Optional

from ..simnet.clock import SimulationError, Timer, _COMPACT_MIN_QUEUE

__all__ = ["WallClock"]


class WallClock:
    """Scheduler-compatible wall clock on a private asyncio loop.

    Usage mirrors :class:`~repro.simnet.clock.Scheduler`::

        clock = WallClock()
        clock.call_after(10.0, print, "ten real ms later")
        clock.run_until_idle()
    """

    #: Longest the pump sleeps with nothing due: a safety net against a
    #: missed wake-up (all known wake sources call :meth:`kick`).
    max_sleep_ms = 50.0
    #: ``run_until_idle``: how long queue-empty + transport-quiet must
    #: hold before the run is declared idle.  Localhost frames cross the
    #: kernel in microseconds; 150 ms covers scheduler hiccups too.
    idle_grace_ms = 150.0

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        self._loop = loop if loop is not None else asyncio.new_event_loop()
        self._owns_loop = loop is None
        self._origin = time.monotonic()
        self._seq = 0
        self._queue: List[Any] = []
        self._events_processed = 0
        self._live = 0
        self._cancelled_in_queue = 0
        self._wake: Optional[asyncio.Event] = None
        self._busy_checks: List[Callable[[], bool]] = []
        self._running = False
        self._closed = False

    # ------------------------------------------------------------------
    # Scheduler surface

    @property
    def now(self) -> float:
        """Wall milliseconds since construction (monotone)."""
        return (time.monotonic() - self._origin) * 1000.0

    @property
    def _now(self) -> float:
        # The engine's inlined fast paths read ``scheduler._now`` as an
        # attribute; a property keeps those reads working verbatim.
        return (time.monotonic() - self._origin) * 1000.0

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live events still in the queue (O(1))."""
        return self._live

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The asyncio loop timers and transport I/O share."""
        return self._loop

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute clock time ``when`` (ms).

        Unlike the deterministic scheduler, ``when`` in the past is
        accepted and fires on the next pump pass: against wall time a
        deadline can be stale the instant it is computed.
        """
        seq = self._seq
        self._seq = seq + 1
        timer = Timer(when, seq, fn, args, self)
        heapq.heappush(self._queue, (when, seq, timer))
        self._live += 1
        self.kick()
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.3f}")
        return self.call_at(self.now + delay, fn, *args)

    def call_at_anon(self, when: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule without a cancellation handle (hot-path shape)."""
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (when, seq, fn, args))
        self._live += 1
        self.kick()

    def _on_cancel(self) -> None:
        """A queued timer was cancelled: adjust counters, maybe compact."""
        self._live -= 1
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._queue[:] = [
                e for e in self._queue if len(e) == 4 or not e[2]._cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0

    # ------------------------------------------------------------------
    # realnet extensions

    def rebase(self) -> None:
        """Reset ``now`` to zero.

        Deployment construction (RSA enrollment, socket binds) burns
        real time before a workload's first scheduled tick; rebasing
        afterwards makes schedules anchored at clock time 0 start *now*
        instead of firing their early ticks as one stale burst.  Queued
        entries keep their absolute deadlines — on the rebased clock
        they are simply further in the future.
        """
        self._origin = time.monotonic()

    def add_busy_check(self, fn: Callable[[], bool]) -> None:
        """Register a transport in-flight probe for ``run_until_idle``.

        The queue cannot see a frame that has been written to a socket
        but not yet read back; the transport reports that window here.
        """
        self._busy_checks.append(fn)

    def kick(self) -> None:
        """Wake the pump: new work arrived from an I/O callback."""
        wake = self._wake
        if wake is not None and not wake.is_set():
            wake.set()

    def close(self) -> None:
        """Close the owned event loop.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._owns_loop and not self._loop.is_closed():
            self._loop.close()

    # ------------------------------------------------------------------
    # running

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until wall time ``until`` (ms on this clock), or — with no
        ``until`` — until the system quiesces (same as
        :meth:`run_until_idle`).  ``max_events`` bounds callbacks fired.
        """
        self._drive(until=until, max_events=max_events, raise_on_cap=False)

    def run_until_idle(
        self,
        max_events: int = 10_000_000,
        max_wall_ms: Optional[float] = None,
    ) -> None:
        """Run until the queue drains and the transport reports quiet for
        :attr:`idle_grace_ms`.  Raises :class:`SimulationError` if
        ``max_events`` fire first or ``max_wall_ms`` elapses first — the
        wall-clock analogue of "the simulation did not quiesce".
        """
        self._drive(
            until=None, max_events=max_events,
            raise_on_cap=True, max_wall_ms=max_wall_ms,
        )

    def _drive(
        self,
        until: Optional[float],
        max_events: Optional[int],
        raise_on_cap: bool,
        max_wall_ms: Optional[float] = None,
    ) -> None:
        if self._running:
            raise SimulationError("clock is already running")
        self._running = True
        try:
            self._loop.run_until_complete(
                self._pump(until, max_events, raise_on_cap, max_wall_ms)
            )
        finally:
            self._running = False

    def _fire_due(self) -> int:
        """Fire every entry whose ``when`` has passed; returns the count."""
        fired = 0
        queue = self._queue
        pop = heapq.heappop
        while queue:
            head = queue[0]
            if len(head) == 3 and head[2]._cancelled:
                pop(queue)
                self._cancelled_in_queue -= 1
                continue
            if head[0] > self.now:
                break
            entry = pop(queue)
            self._live -= 1
            if len(entry) == 4:
                entry[2](*entry[3])
            else:
                entry[2]._fire()
            self._events_processed += 1
            fired += 1
        return fired

    def _peek_when(self) -> Optional[float]:
        queue = self._queue
        while queue:
            head = queue[0]
            if len(head) == 3 and head[2]._cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            return head[0]
        return None

    async def _pump(
        self,
        until: Optional[float],
        max_events: Optional[int],
        raise_on_cap: bool,
        max_wall_ms: Optional[float],
    ) -> None:
        self._wake = asyncio.Event()
        started = self.now
        fired_total = 0
        idle_since: Optional[float] = None
        drain = until is None
        try:
            while True:
                fired_total += self._fire_due()
                if max_events is not None and fired_total >= max_events:
                    if raise_on_cap:
                        raise SimulationError(
                            f"run did not quiesce within {max_events} events"
                        )
                    return
                now = self.now
                if until is not None and now >= until:
                    return
                if max_wall_ms is not None and now - started >= max_wall_ms:
                    raise SimulationError(
                        f"run did not quiesce within {max_wall_ms:.0f} ms wall"
                    )
                if drain:
                    busy = self._live > 0 or any(c() for c in self._busy_checks)
                    if busy:
                        idle_since = None
                    elif idle_since is None:
                        idle_since = now
                    elif now - idle_since >= self.idle_grace_ms:
                        return

                delay_ms = self.max_sleep_ms
                nxt = self._peek_when()
                if nxt is not None and nxt - now < delay_ms:
                    delay_ms = nxt - now
                if until is not None and until - now < delay_ms:
                    delay_ms = until - now
                if drain and idle_since is not None:
                    remaining = self.idle_grace_ms - (now - idle_since)
                    if remaining < delay_ms:
                        delay_ms = remaining
                if delay_ms <= 0:
                    # Something is already due: yield one loop pass so
                    # socket callbacks interleave, then fire it.
                    self._wake.clear()
                    await asyncio.sleep(0)
                    continue
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=delay_ms / 1000.0
                    )
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
        finally:
            self._wake = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WallClock now={self.now:.3f} pending={self.pending}>"
