"""Small scheduling helpers shared by protocol actors."""

from __future__ import annotations

from typing import Any, Callable, Optional

from .clock import Scheduler, Timer

__all__ = ["Periodic"]


class Periodic:
    """A cancellable periodic callback (e.g. the shim's per-tick poll loop).

    The callback fires every ``interval_ms`` starting ``interval_ms`` after
    :meth:`start` (or immediately when ``fire_now`` is set).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        interval_ms: float,
        fn: Callable[[], Any],
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self._scheduler = scheduler
        self._interval = interval_ms
        self._fn = fn
        self._timer: Optional[Timer] = None
        self._running = False
        self.fire_count = 0

    @property
    def running(self) -> bool:
        return self._running

    @property
    def interval_ms(self) -> float:
        return self._interval

    def start(self, fire_now: bool = False) -> "Periodic":
        if self._running:
            return self
        self._running = True
        if fire_now:
            self._timer = self._scheduler.call_after(0.0, self._tick)
        else:
            self._timer = self._scheduler.call_after(self._interval, self._tick)
        return self

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.fire_count += 1
        self._fn()
        if self._running:
            self._timer = self._scheduler.call_after(self._interval, self._tick)
