"""Deterministic discrete-event scheduler.

All latency figures in this reproduction are *simulated* milliseconds
produced by this scheduler.  The paper measured wall-clock latencies on an
Internet-wide SoftLayer deployment; we substitute a deterministic
discrete-event simulation (see DESIGN.md §2) so every figure is exactly
reproducible from a seed.

Time is a ``float`` number of milliseconds since the start of the
simulation.  Events scheduled for the same instant fire in the order they
were scheduled (FIFO tie-break via a monotonically increasing sequence
number), which keeps runs deterministic.

The queue stores ``(when, seq, timer)`` tuples rather than timer objects:
``seq`` is unique, so heap ordering is decided entirely inside the
C-level tuple comparison and Python-level ``__lt__`` calls never happen
on the hot path (at 32 peers they were the single largest profile line).
Cancelled timers are removed lazily on pop, with a live counter making
:attr:`Scheduler.pending` O(1) and a compaction pass rebuilding the heap
whenever cancelled entries outnumber live ones (retry timers are almost
always cancelled, so an un-compacted queue grows without bound).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple, Union

__all__ = ["Scheduler", "Timer", "SimulationError"]

#: Compaction only kicks in above this queue size: tiny queues drain
#: quickly anyway and rebuilding them would cost more than it saves.
_COMPACT_MIN_QUEUE = 64


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Timer:
    """Handle to a scheduled event; supports cancellation.

    Returned by :meth:`Scheduler.call_at` and :meth:`Scheduler.call_after`.
    Cancelling an already-fired or already-cancelled timer is a no-op.
    """

    __slots__ = ("when", "seq", "_fn", "_args", "_cancelled", "_fired", "_sched")

    def __init__(
        self,
        when: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sched: Optional["Scheduler"] = None,
    ):
        self.when = when
        self.seq = seq
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._fired = False
        self._sched = sched

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._sched is not None:
            self._sched._on_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not (self._fired or self._cancelled)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._fn(*self._args)

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<Timer t={self.when:.3f} seq={self.seq} {state}>"


#: Heap entries: ``(when, seq, timer)`` for cancellable events,
#: ``(when, seq, fn, args)`` for anonymous ones.  ``seq`` is unique, so
#: tuple comparison never reaches the third element and the two shapes
#: can share one heap.
_Entry = Union[Tuple[float, int, Timer], Tuple[float, int, Callable, tuple]]


class Scheduler:
    """A minimal, deterministic discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.call_after(10.0, print, "ten ms in")
        sched.run()
        assert sched.now == 10.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Entry] = []
        self._events_processed = 0
        self._live = 0  # active (un-cancelled, un-fired) entries in queue
        self._cancelled_in_queue = 0

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live events still in the queue (O(1))."""
        return self._live

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.3f} before now={self._now:.3f}"
            )
        seq = self._seq
        self._seq = seq + 1
        timer = Timer(when, seq, fn, args, self)
        heapq.heappush(self._queue, (when, seq, timer))
        self._live += 1
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.3f}")
        return self.call_at(self._now + delay, fn, *args)

    def call_at_anon(self, when: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``when`` with no cancellation handle.

        The hot paths (message delivery, CPU-completion events) schedule
        millions of events and never cancel them; skipping the
        :class:`Timer` allocation is a measurable share of a large
        replay.  Ordering is identical to :meth:`call_at` — the entry
        consumes a sequence number from the same counter.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.3f} before now={self._now:.3f}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (when, seq, fn, args))
        self._live += 1

    def _on_cancel(self) -> None:
        """A queued timer was cancelled: adjust counters, maybe compact."""
        self._live -= 1
        self._cancelled_in_queue += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            # In-place (slice) rebuild: run_until_idle holds a local
            # reference to the queue list across callbacks.
            self._queue[:] = [
                e for e in self._queue if len(e) == 4 or not e[2]._cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if len(entry) == 4:  # anonymous (never-cancelled) entry
                self._live -= 1
                self._now = entry[0]
                entry[2](*entry[3])
                self._events_processed += 1
                return True
            when, _seq, timer = entry
            if timer._cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._live -= 1
            self._now = when
            timer._fire()
            self._events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue drains earlier, so ``now`` is predictable.
        """
        fired = 0
        while self._queue:
            nxt_when = self._peek_when()
            if nxt_when is None:
                break
            if until is not None and nxt_when > until:
                break
            if max_events is not None and fired >= max_events:
                return
            self.step()
            fired += 1
        if until is not None and self._now < until:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events`` as a backstop).

        This is the workhorse of every simulation run, so the
        :meth:`step` logic is inlined: one Python call per event saved
        is seconds over a multi-million-event replay.  Semantics are
        identical to ``while self.step(): ...``.
        """
        fired = 0
        queue = self._queue  # compaction rebuilds this list in place
        pop = heapq.heappop
        while queue:
            entry = pop(queue)
            if len(entry) == 4:  # anonymous (never-cancelled) entry
                self._live -= 1
                self._now = entry[0]
                entry[2](*entry[3])
            else:
                timer = entry[2]
                if timer._cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                self._live -= 1
                self._now = entry[0]
                timer._fire()
            self._events_processed += 1
            fired += 1
            if fired >= max_events:
                raise SimulationError(f"simulation did not quiesce within {max_events} events")

    def _peek_when(self) -> Optional[float]:
        """Fire time of the next live event, discarding cancelled heads."""
        queue = self._queue
        while queue:
            head = queue[0]
            if len(head) == 3 and head[2]._cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            return head[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheduler now={self._now:.3f} pending={self.pending}>"
