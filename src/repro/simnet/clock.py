"""Deterministic discrete-event scheduler.

All latency figures in this reproduction are *simulated* milliseconds
produced by this scheduler.  The paper measured wall-clock latencies on an
Internet-wide SoftLayer deployment; we substitute a deterministic
discrete-event simulation (see DESIGN.md §2) so every figure is exactly
reproducible from a seed.

Time is a ``float`` number of milliseconds since the start of the
simulation.  Events scheduled for the same instant fire in the order they
were scheduled (FIFO tie-break via a monotonically increasing sequence
number), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["Scheduler", "Timer", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler operations (e.g. scheduling in the past)."""


class Timer:
    """Handle to a scheduled event; supports cancellation.

    Returned by :meth:`Scheduler.call_at` and :meth:`Scheduler.call_after`.
    Cancelling an already-fired or already-cancelled timer is a no-op.
    """

    __slots__ = ("when", "seq", "_fn", "_args", "_cancelled", "_fired")

    def __init__(self, when: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.when = when
        self.seq = seq
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not (self._fired or self._cancelled)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired = True
        self._fn(*self._args)

    def __lt__(self, other: "Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<Timer t={self.when:.3f} seq={self.seq} {state}>"


class Scheduler:
    """A minimal, deterministic discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.call_after(10.0, print, "ten ms in")
        sched.run()
        assert sched.now == 10.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[Timer] = []
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return sum(1 for t in self._queue if t.active)

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.3f} before now={self._now:.3f}"
            )
        timer = Timer(when, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, timer)
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.3f}")
        return self.call_at(self._now + delay, fn, *args)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if the queue is empty."""
        while self._queue:
            timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self._now = timer.when
            timer._fire()
            self._events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the queue drains earlier, so ``now`` is predictable.
        """
        fired = 0
        while self._queue:
            nxt = self._peek()
            if nxt is None:
                break
            if until is not None and nxt.when > until:
                break
            if max_events is not None and fired >= max_events:
                return
            self.step()
            fired += 1
        if until is not None and self._now < until:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events`` as a backstop)."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(f"simulation did not quiesce within {max_events} events")

    def _peek(self) -> Optional[Timer]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheduler now={self._now:.3f} pending={self.pending}>"
