"""Deterministic discrete-event network simulator.

This substrate replaces the paper's physical deployments (SoftLayer
Dallas / San Jose / Toronto over the Internet, and a 1 Gbps LAN testbed)
with simulated time; see DESIGN.md §2 for the substitution argument.
"""

from .bridge import DEFAULT_LOOKAHEAD_MS, BridgeError, ShardGroupPort, TimeBridge
from .clock import Scheduler, SimulationError, Timer
from .ddos import (
    Attack,
    FloodAttack,
    LatencyInjectionAttack,
    PartitionAttack,
    TakedownAttack,
    select_victims,
)
from .latency import (
    INTERCONTINENTAL,
    INTERNET_US,
    LAN_1GBPS,
    LatencyProfile,
    Region,
)
from .process import Periodic
from .topology import Host, Topology, place_random, place_round_robin
from .transport import HostCondition, Message, Network, NetworkStats

__all__ = [
    "DEFAULT_LOOKAHEAD_MS",
    "BridgeError",
    "ShardGroupPort",
    "TimeBridge",
    "Scheduler",
    "SimulationError",
    "Timer",
    "Attack",
    "FloodAttack",
    "LatencyInjectionAttack",
    "PartitionAttack",
    "TakedownAttack",
    "select_victims",
    "INTERCONTINENTAL",
    "INTERNET_US",
    "LAN_1GBPS",
    "LatencyProfile",
    "Region",
    "Periodic",
    "Host",
    "Topology",
    "place_random",
    "place_round_robin",
    "HostCondition",
    "Message",
    "Network",
    "NetworkStats",
]
