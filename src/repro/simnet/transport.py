"""Message transport over the simulated network.

Delivery delay for a message is::

    egress queueing (sender NIC serialisation, FIFO per host)
    + one-way propagation between regions (+ jitter)
    + per-message overhead
    + attack-injected latency at the receiver (DDoS model)

Egress serialisation is what makes an orderer's block dissemination to
``N`` peers take time linear in ``N`` — the physical root of the paper's
observation that event-validation latency grows with peer count
(Fig. 3c) and "shoots up" past 32 peers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heappush
from typing import Any, Callable, Dict, List, Optional, Sequence

from .clock import Scheduler
from .latency import LatencyProfile
from .topology import Host, Topology

__all__ = ["Message", "HostCondition", "NetworkStats", "Network"]


class Message:
    """An in-flight message.  ``payload`` is any Python object (we simulate
    the network, not the encoding); ``size_bytes`` drives serialisation.

    A plain ``__slots__`` class rather than a (frozen) dataclass: one is
    allocated per send and the frozen-dataclass ``__init__`` (five
    ``object.__setattr__`` calls) is measurable at millions of messages.
    """

    __slots__ = ("src", "dst", "payload", "size_bytes", "sent_at")

    def __init__(self, src: str, dst: str, payload: Any, size_bytes: int, sent_at: float):
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size_bytes = size_bytes
        self.sent_at = sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(src={self.src!r}, dst={self.dst!r}, payload={self.payload!r}, "
            f"size_bytes={self.size_bytes}, sent_at={self.sent_at})"
        )


@dataclass
class HostCondition:
    """Mutable per-host fault/attack state, manipulated by ``simnet.ddos``."""

    down: bool = False
    extra_ingress_ms: float = 0.0
    ingress_drop_rate: float = 0.0


@dataclass
class NetworkStats:
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    #: Drops attributed to an active partition (subset of messages_dropped).
    messages_dropped_partition: int = 0
    #: Drops decided by an installed fault injector (subset of messages_dropped).
    messages_dropped_fault: int = 0
    #: Extra copies scheduled by a fault injector (duplicate fault).
    messages_duplicated: int = 0
    #: Messages whose delivery a fault injector moved past its natural time.
    messages_delayed_fault: int = 0
    #: Deliveries that overtook an older message on the same (src, dst)
    #: channel — only fault injection can break the per-channel FIFO.
    messages_reordered: int = 0
    partitions_started: int = 0
    partitions_healed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "messages_dropped_partition": self.messages_dropped_partition,
            "messages_dropped_fault": self.messages_dropped_fault,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed_fault": self.messages_delayed_fault,
            "messages_reordered": self.messages_reordered,
            "partitions_started": self.partitions_started,
            "partitions_healed": self.partitions_healed,
        }


class Network:
    """The simulated network fabric connecting all hosts.

    A single :class:`Network` owns the scheduler, the latency profile and
    the per-host fault conditions.  All sends are asynchronous: ``send``
    returns immediately and the payload is delivered via the recipient's
    :meth:`~repro.simnet.topology.Host.handle_message` at a later simulated
    time (or never, if lost).
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        profile: Optional[LatencyProfile] = None,
        seed: int = 0,
    ) -> None:
        from .latency import INTERNET_US

        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.profile = profile if profile is not None else INTERNET_US
        self.rng = random.Random(seed)
        self.topology = Topology()
        self.stats = NetworkStats()
        self._conditions: Dict[str, HostCondition] = {}
        self._egress_free_at: Dict[str, float] = {}
        # Nested src -> dst -> time maps (not (src, dst)-tuple keys): the
        # lookups run per message and nested dict gets reuse the interned
        # string hashes instead of building and hashing a tuple each time.
        self._channel_clear_at: Dict[str, Dict[str, float]] = {}
        self._channel_last_sent_at: Dict[str, Dict[str, float]] = {}
        #: host -> partition group id; messages between different groups
        #: are dropped while a partition is active (None = no partition).
        self._partition_of: Optional[Dict[str, int]] = None
        #: Chaos hook (see the ``fault_injector`` property): called with
        #: each otherwise-deliverable message and its natural delivery
        #: time; returns the delivery times to use — an empty list drops
        #: the message, more than one duplicates it.
        self._fault_injector: Optional[Callable[[Message, float], List[float]]] = None
        #: Reorder detection runs only after a fault injector has ever
        #: been installed: without tampering the per-channel FIFO clamp
        #: makes reordering impossible, so the per-delivery bookkeeping
        #: would be pure overhead on the (dominant) fault-free runs.
        self._reorder_track = False
        #: Observer for fabric-level events ("partition", "heal"), called
        #: with the event name and a detail dict.  Chaos timelines and
        #: monitors subscribe here.
        self.on_stats_event: Optional[Callable[[str, Dict[str, Any]], None]] = None
        #: Optional :class:`repro.telemetry.Telemetry`.  Set by
        #: ``Telemetry.bind_network``, which exports :attr:`stats` as
        #: collect-time callback gauges and chains ``on_stats_event`` —
        #: the transport hot path itself carries no telemetry branches.
        self.telemetry = None

    # ------------------------------------------------------------------
    # registration

    def register(self, host: Host) -> Host:
        """Attach ``host`` to this network."""
        self.topology.add(host)
        host.network = self
        cond = HostCondition()
        self._conditions[host.name] = cond
        host._condition = cond
        self._egress_free_at[host.name] = 0.0
        return host

    def condition(self, host_name: str) -> HostCondition:
        """The mutable fault condition for a host (used by attack models)."""
        return self._conditions[host_name]

    @property
    def fault_injector(self) -> Optional[Callable[[Message, float], List[float]]]:
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(
        self, fn: Optional[Callable[[Message, float], List[float]]]
    ) -> None:
        self._fault_injector = fn
        if fn is not None:
            # Once any injector has run, tampered messages may overtake
            # untampered ones; keep reorder tracking on for the rest of
            # the run (clearing the injector must not blind detection of
            # still-in-flight tampered deliveries).
            self._reorder_track = True

    def host(self, name: str) -> Host:
        return self.topology.get(name)

    # ------------------------------------------------------------------
    # sending

    def send(self, src: Host, dst: Host, payload: Any, size_bytes: int = 256) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        Messages to or from a *down* host are silently dropped — the
        application-level protocols are responsible for timeouts, exactly
        as over a real network.
        """
        stats = self.stats
        profile = self.profile
        src_name = src.name
        dst_name = dst.name
        scheduler = self.scheduler
        now = scheduler._now
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes

        src_cond = src._condition
        dst_cond = dst._condition
        if src_cond.down or dst_cond.down:
            stats.messages_dropped += 1
            return
        if self._partition_of is not None:
            if self._partition_of.get(src_name) != self._partition_of.get(dst_name):
                stats.messages_dropped += 1
                stats.messages_dropped_partition += 1
                return
        if profile.loss_rate and self.rng.random() < profile.loss_rate:
            stats.messages_dropped += 1
            return
        if dst_cond.ingress_drop_rate and self.rng.random() < dst_cond.ingress_drop_rate:
            stats.messages_dropped += 1
            return

        # FIFO egress serialisation at the sender's NIC.
        egress_free = self._egress_free_at
        egress_start = egress_free[src_name]
        if now > egress_start:
            egress_start = now
        if size_bytes > 0:  # LatencyProfile.serialization, inlined
            egress_done = egress_start + size_bytes * 8.0 / (
                profile.bandwidth_mbps * 1000.0
            )
        else:
            egress_done = egress_start
        egress_free[src_name] = egress_done

        # LatencyProfile.one_way_delay(src, dst, 0, rng), inlined: same
        # terms in the same order (one RNG draw, jitter last) so delivery
        # times are bit-identical, minus two Python calls per message.
        if profile.jitter_ms > 0.0:
            jitter = profile.jitter_ms * self.rng.random()
        else:
            jitter = 0.0
        src_region = src.region
        dst_region = dst.region
        if src_region == dst_region:
            propagation = profile.intra_region_ms
        else:
            propagation = profile.propagation_ms.get(
                (src_region, dst_region), profile.default_propagation_ms
            )
        flight = propagation + profile.overhead_ms + jitter
        deliver_at = egress_done + flight + dst_cond.extra_ingress_ms

        # Channels are FIFO per (src, dst) pair: Fabric's gRPC transport runs
        # over TCP, so jitter cannot reorder messages within one connection.
        clear_by_dst = self._channel_clear_at.get(src_name)
        if clear_by_dst is None:
            clear_by_dst = self._channel_clear_at[src_name] = {}
        clear_at = clear_by_dst.get(dst_name, 0.0)
        if clear_at > deliver_at:
            deliver_at = clear_at
        clear_by_dst[dst_name] = deliver_at

        if self._fault_injector is not None:
            # The injector API takes a Message; allocate one only on this
            # (chaos) path and read the payload back afterwards so a
            # tampering injector's mutations are honoured.
            msg = Message(src_name, dst_name, payload, size_bytes, now)
            times = self._fault_injector(msg, deliver_at)
            if not times:
                stats.messages_dropped += 1
                stats.messages_dropped_fault += 1
                return
            if len(times) > 1:
                stats.messages_duplicated += len(times) - 1
            if max(times) > deliver_at:
                stats.messages_delayed_fault += 1
            for when in times:
                scheduler.call_at_anon(
                    max(when, now), self._deliver, dst, src, msg.payload, now
                )
            return
        # Fast path: no Message allocation — the delivery closure carries
        # the payload and send time directly.  The scheduler push is
        # inlined (Scheduler.call_at_anon, same seq counter, minus one
        # call per message); the past-time guard is skipped because every
        # term above is non-negative, making deliver_at >= now.
        seq = scheduler._seq
        scheduler._seq = seq + 1
        heappush(scheduler._queue, (deliver_at, seq, self._deliver, (dst, src, payload, now)))
        scheduler._live += 1

    def send_many(
        self, src: Host, dsts: Sequence[Host], payload: Any, size_bytes: int = 256
    ) -> None:
        """Send one ``payload`` from ``src`` to every host in ``dsts``.

        Exactly equivalent to calling :meth:`send` once per destination in
        order — same RNG draw sequence, same FIFO egress accumulation,
        same delivery times, same statistics — with every sender-side
        lookup hoisted out of the loop.  Vote and state-hash broadcasts
        dominate a 32-peer replay's message count, so this loop is the
        hottest code in the transport.
        """
        stats = self.stats
        profile = self.profile
        src_name = src.name
        src_region = src.region
        scheduler = self.scheduler
        now = scheduler._now
        src_down = src._condition.down
        partition_of = self._partition_of
        src_group = partition_of.get(src_name) if partition_of is not None else None
        rng_random = self.rng.random
        loss_rate = profile.loss_rate
        jitter_ms = profile.jitter_ms
        overhead_ms = profile.overhead_ms
        intra_region_ms = profile.intra_region_ms
        propagation_get = profile.propagation_ms.get
        default_propagation = profile.default_propagation_ms
        if size_bytes > 0:  # LatencyProfile.serialization, inlined
            egress_ser = size_bytes * 8.0 / (profile.bandwidth_mbps * 1000.0)
        else:
            egress_ser = 0.0
        egress_free = self._egress_free_at
        egress_cursor = egress_free[src_name]
        clear_by_dst = self._channel_clear_at.get(src_name)
        if clear_by_dst is None:
            clear_by_dst = self._channel_clear_at[src_name] = {}
        fault_injector = self._fault_injector
        call_at_anon = scheduler.call_at_anon
        deliver = self._deliver
        queue = scheduler._queue
        seq = scheduler._seq
        n_sent = 0
        n_dropped = 0

        for dst in dsts:
            dst_name = dst.name
            n_sent += 1
            dst_cond = dst._condition
            if src_down or dst_cond.down:
                n_dropped += 1
                continue
            if partition_of is not None:
                if src_group != partition_of.get(dst_name):
                    n_dropped += 1
                    stats.messages_dropped_partition += 1
                    continue
            if loss_rate and rng_random() < loss_rate:
                n_dropped += 1
                continue
            if dst_cond.ingress_drop_rate and rng_random() < dst_cond.ingress_drop_rate:
                n_dropped += 1
                continue

            # FIFO egress serialisation at the sender's NIC: the cursor is
            # the local image of _egress_free_at[src_name], written back
            # once after the loop (nothing else can observe it mid-loop —
            # no events fire while we iterate).
            if now > egress_cursor:
                egress_cursor = now
            egress_done = egress_cursor + egress_ser
            egress_cursor = egress_done

            if jitter_ms > 0.0:
                jitter = jitter_ms * rng_random()
            else:
                jitter = 0.0
            dst_region = dst.region
            if src_region == dst_region:
                propagation = intra_region_ms
            else:
                propagation = propagation_get(
                    (src_region, dst_region), default_propagation
                )
            flight = propagation + overhead_ms + jitter
            deliver_at = egress_done + flight + dst_cond.extra_ingress_ms

            clear_at = clear_by_dst.get(dst_name, 0.0)
            if clear_at > deliver_at:
                deliver_at = clear_at
            clear_by_dst[dst_name] = deliver_at

            if fault_injector is not None:
                msg = Message(src_name, dst_name, payload, size_bytes, now)
                times = fault_injector(msg, deliver_at)
                if not times:
                    n_dropped += 1
                    stats.messages_dropped_fault += 1
                    continue
                if len(times) > 1:
                    stats.messages_duplicated += len(times) - 1
                if max(times) > deliver_at:
                    stats.messages_delayed_fault += 1
                # Flush the inlined-push seq before re-entering the
                # scheduler API, resync after.
                scheduler._seq = seq
                for when in times:
                    call_at_anon(max(when, now), deliver, dst, src, msg.payload, now)
                seq = scheduler._seq
                continue
            # Inlined Scheduler.call_at_anon (same seq counter, one fewer
            # call per message; deliver_at >= now by construction).
            heappush(queue, (deliver_at, seq, deliver, (dst, src, payload, now)))
            seq += 1
            scheduler._live += 1

        scheduler._seq = seq
        stats.messages_sent += n_sent
        stats.bytes_sent += size_bytes * n_sent
        stats.messages_dropped += n_dropped
        egress_free[src_name] = egress_cursor

    def _deliver(self, dst: Host, src: Host, payload: Any, sent_at: float) -> None:
        stats = self.stats
        # Re-check: host may have gone down while the message was in flight.
        if dst._condition.down:
            stats.messages_dropped += 1
            return
        if self._reorder_track:
            # Only fault injection can break the per-channel FIFO, so the
            # overtake bookkeeping runs only once an injector has been
            # installed (see the fault_injector setter).
            last_by_dst = self._channel_last_sent_at.get(src.name)
            if last_by_dst is None:
                last_by_dst = self._channel_last_sent_at[src.name] = {}
            last = last_by_dst.get(dst.name)
            if last is not None and sent_at < last:
                stats.messages_reordered += 1
            else:
                last_by_dst[dst.name] = sent_at
        stats.messages_delivered += 1
        dst.handle_message(src, payload)

    # ------------------------------------------------------------------
    # partitions

    def partition(self, *groups) -> None:
        """Split the network: hosts in different groups cannot exchange
        messages.  Hosts not named in any group share an implicit extra
        group.  Call :meth:`heal` to reconnect."""
        mapping: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                mapping[name] = index
        self._partition_of = mapping
        self.stats.partitions_started += 1
        self._emit("partition", {
            "t": self.scheduler.now,
            "groups": [sorted(group) for group in groups],
        })

    def heal(self) -> None:
        """Remove an active partition."""
        was_active = self._partition_of is not None
        self._partition_of = None
        if was_active:
            self.stats.partitions_healed += 1
            self._emit("heal", {"t": self.scheduler.now})

    def _emit(self, event: str, detail: Dict[str, Any]) -> None:
        if self.on_stats_event is not None:
            self.on_stats_event(event, detail)

    @property
    def partitioned(self) -> bool:
        return self._partition_of is not None

    # ------------------------------------------------------------------
    # convenience

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.scheduler.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        self.scheduler.run_until_idle(max_events=max_events)
