"""Hosts, regions and placement.

The paper's experimental setup uses Docker Swarm to place peers and Fabric
services *randomly* across an overlay network spanning three data centres
(§7: "deployed randomly across the overlay network of the servers").
:func:`place_round_robin` and :func:`place_random` reproduce both
deterministic and Swarm-style random placements.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from .latency import Region

__all__ = ["Host", "Topology", "place_round_robin", "place_random"]


class Host:
    """A network endpoint living in a region.

    Protocol actors (peers, orderers, shims, game servers) subclass
    :class:`Host` and override :meth:`handle_message`.  Hosts must be
    registered with a :class:`~repro.simnet.transport.Network` before they
    can send or receive.
    """

    def __init__(self, name: str, region: str = Region.LAN):
        if not name:
            raise ValueError("host name must be non-empty")
        self.name = name
        self.region = region
        self.network: Optional[Any] = None  # set by Network.register
        #: The host's mutable HostCondition, pinned here by
        #: Network.register so the transport hot paths read it with one
        #: attribute load instead of a per-message dict lookup.
        self._condition: Optional[Any] = None

    def send(self, dst: "Host", payload: Any, size_bytes: int = 256) -> None:
        """Send ``payload`` to ``dst`` through the attached network."""
        if self.network is None:
            raise RuntimeError(f"host {self.name!r} is not attached to a network")
        self.network.send(self, dst, payload, size_bytes)

    def send_many(self, dsts, payload: Any, size_bytes: int = 256) -> None:
        """Send ``payload`` to every host in ``dsts`` (broadcast fast path).

        Equivalent to calling :meth:`send` per destination, in order —
        same RNG draws, same delivery times.  When ``send`` itself has
        been instance- or subclass-patched (byzantine/chaos fixtures
        tamper with outgoing messages there), the broadcast must keep
        routing through it, so the fast path stands aside.
        """
        if self.network is None:
            raise RuntimeError(f"host {self.name!r} is not attached to a network")
        if "send" in self.__dict__ or type(self).send is not Host.send:
            for dst in dsts:
                self.send(dst, payload, size_bytes=size_bytes)
            return
        self.network.send_many(self, dsts, payload, size_bytes)

    def handle_message(self, src: "Host", payload: Any) -> None:
        """Called when a message is delivered to this host.  Override."""
        raise NotImplementedError(
            f"{type(self).__name__} does not handle messages (got one from {src.name})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}@{self.region}>"


class Topology:
    """A named collection of hosts with lookup by name and region."""

    def __init__(self) -> None:
        self._hosts: Dict[str, Host] = {}

    def add(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise ValueError(f"duplicate host name {host.name!r}")
        self._hosts[host.name] = host
        return host

    def get(self, name: str) -> Host:
        return self._hosts[name]

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self):
        return iter(self._hosts.values())

    def in_region(self, region: str) -> List[Host]:
        return [h for h in self._hosts.values() if h.region == region]

    @property
    def names(self) -> List[str]:
        return list(self._hosts)


def place_round_robin(count: int, regions: Sequence[str] = Region.US) -> List[str]:
    """Deterministically assign ``count`` hosts to regions round-robin."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [regions[i % len(regions)] for i in range(count)]


def place_random(
    count: int, regions: Sequence[str] = Region.US, seed: int = 0
) -> List[str]:
    """Swarm-style random placement of ``count`` hosts across ``regions``."""
    rng = random.Random(seed)
    return [rng.choice(list(regions)) for _ in range(count)]
