"""Latency and bandwidth profiles for the simulated deployments.

The paper evaluates on two physical setups:

* an Internet-wide deployment with Fabric peers at SoftLayer Dallas,
  San Jose and Toronto (``INTERNET_US``), and
* a 1 Gbps LAN testbed used for the minimum-absolute cheat-prevention
  latency experiment (``LAN_1GBPS``).

A :class:`LatencyProfile` captures one-way propagation delay between
regions, jitter, bandwidth (which serialises large messages such as
blocks) and a fixed per-message processing overhead.  Constants are
calibrated so the aggregate event-validation latency curve matches the
shape of the paper's Fig. 3c (see DESIGN.md §6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Region",
    "LatencyProfile",
    "INTERNET_US",
    "LAN_1GBPS",
    "INTERCONTINENTAL",
]


class Region:
    """Named deployment regions.  Plain string constants keep hashing cheap."""

    DALLAS = "dallas"
    SAN_JOSE = "san-jose"
    TORONTO = "toronto"
    FRANKFURT = "frankfurt"
    SINGAPORE = "singapore"
    LAN = "lan"

    US = (DALLAS, SAN_JOSE, TORONTO)
    ALL = (DALLAS, SAN_JOSE, TORONTO, FRANKFURT, SINGAPORE, LAN)


def _symmetric(matrix: Dict[Tuple[str, str], float]) -> Dict[Tuple[str, str], float]:
    """Expand a triangular region-pair latency map into a symmetric one."""
    out = dict(matrix)
    for (a, b), v in matrix.items():
        out[(b, a)] = v
    return out


@dataclass(frozen=True)
class LatencyProfile:
    """One-way network characteristics between deployment regions.

    Attributes:
        name: human-readable profile name.
        propagation_ms: one-way propagation delay per region pair.
        intra_region_ms: one-way delay between two hosts in the same region.
        jitter_ms: uniform jitter amplitude added to each message.
        bandwidth_mbps: per-link bandwidth; serialisation delay is
            ``size_bytes * 8 / (bandwidth_mbps * 1000)`` milliseconds.
        overhead_ms: fixed per-message processing overhead (kernel/NIC).
        loss_rate: independent per-message loss probability.
    """

    name: str
    propagation_ms: Dict[Tuple[str, str], float]
    intra_region_ms: float
    jitter_ms: float
    bandwidth_mbps: float
    overhead_ms: float = 0.05
    loss_rate: float = 0.0
    default_propagation_ms: float = 40.0
    #: Regions hosts are placed across under this profile.
    region_pool: Tuple[str, ...] = Region.US

    def propagation(self, src_region: str, dst_region: str) -> float:
        """One-way propagation delay between two regions, in ms."""
        if src_region == dst_region:
            return self.intra_region_ms
        return self.propagation_ms.get((src_region, dst_region), self.default_propagation_ms)

    def serialization(self, size_bytes: int) -> float:
        """Time to push ``size_bytes`` onto the wire, in ms."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes * 8.0 / (self.bandwidth_mbps * 1000.0)

    def one_way_delay(
        self, src_region: str, dst_region: str, size_bytes: int, rng: random.Random
    ) -> float:
        """Sampled one-way delay for one message between two regions."""
        # jitter_ms * random() is bit-identical to uniform(0, jitter_ms)
        # (CPython computes a + (b - a) * random()) minus one Python call.
        jitter = self.jitter_ms * rng.random() if self.jitter_ms > 0 else 0.0
        if src_region == dst_region:
            propagation = self.intra_region_ms
        else:
            propagation = self.propagation_ms.get(
                (src_region, dst_region), self.default_propagation_ms
            )
        if size_bytes <= 0:
            # serialization(0) is exactly 0.0; skipping the call (and the
            # + 0.0) is bit-identical and this runs once per message.
            return propagation + self.overhead_ms + jitter
        return propagation + self.serialization(size_bytes) + self.overhead_ms + jitter


# Measured 2018-era one-way latencies between SoftLayer data centres
# (round-trip figures from public looking-glass data, halved).
_US_PAIRS = _symmetric(
    {
        (Region.DALLAS, Region.SAN_JOSE): 20.0,
        (Region.DALLAS, Region.TORONTO): 17.0,
        (Region.SAN_JOSE, Region.TORONTO): 31.0,
    }
)

_GLOBAL_PAIRS = _symmetric(
    {
        (Region.DALLAS, Region.SAN_JOSE): 20.0,
        (Region.DALLAS, Region.TORONTO): 17.0,
        (Region.SAN_JOSE, Region.TORONTO): 31.0,
        (Region.DALLAS, Region.FRANKFURT): 55.0,
        (Region.SAN_JOSE, Region.FRANKFURT): 75.0,
        (Region.TORONTO, Region.FRANKFURT): 48.0,
        (Region.DALLAS, Region.SINGAPORE): 110.0,
        (Region.SAN_JOSE, Region.SINGAPORE): 85.0,
        (Region.TORONTO, Region.SINGAPORE): 105.0,
        (Region.FRANKFURT, Region.SINGAPORE): 80.0,
    }
)

#: The paper's Internet-wide intra-continental deployment (§7, experimental
#: setup): peers in Dallas, San Jose and Toronto, randomly placed by Swarm.
INTERNET_US = LatencyProfile(
    name="internet-us",
    propagation_ms=_US_PAIRS,
    intra_region_ms=0.8,
    jitter_ms=2.0,
    bandwidth_mbps=100.0,
    overhead_ms=0.1,
)

#: The paper's 1 Gbps LAN testbed used for the minimum cheat-prevention
#: latency experiment (§7.2.2).
LAN_1GBPS = LatencyProfile(
    name="lan-1gbps",
    propagation_ms={},
    intra_region_ms=0.15,
    jitter_ms=0.05,
    bandwidth_mbps=1000.0,
    overhead_ms=0.02,
    default_propagation_ms=0.15,
    region_pool=(Region.LAN,),
)

#: An inter-continental profile; the paper notes inter-continental FPS play
#: is rare due to increased latencies — used in ablation benches only.
INTERCONTINENTAL = LatencyProfile(
    name="intercontinental",
    propagation_ms=_GLOBAL_PAIRS,
    intra_region_ms=0.8,
    jitter_ms=4.0,
    bandwidth_mbps=100.0,
    overhead_ms=0.1,
    default_propagation_ms=90.0,
    region_pool=(
        Region.DALLAS,
        Region.SAN_JOSE,
        Region.TORONTO,
        Region.FRANKFURT,
        Region.SINGAPORE,
    ),
)
