"""DDoS attack models (§2.2 and §7.2.4(3) of the paper).

The paper argues three points about game networks under DDoS:

1. attackers need only *add latency* to make a game unplayable (§2.2(2));
2. a C/S deployment has a single point of failure — the server or the
   route to it — whereas the blockchain P2P deployment requires taking
   down at least one third of the peers in every game room (§5);
3. empirically, event-validation throughput is unchanged with 12.5 %,
   25 % and 37.5 % faulty nodes (§7.2.4(3)).

Each attack mutates :class:`~repro.simnet.transport.HostCondition` entries
on the network and can be lifted again, so benches can measure
before/during/after behaviour.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence

from .transport import Network

__all__ = [
    "Attack",
    "TakedownAttack",
    "LatencyInjectionAttack",
    "FloodAttack",
    "PartitionAttack",
    "select_victims",
]


def select_victims(names: Sequence[str], fraction: float, seed: int = 0) -> List[str]:
    """Pick ``fraction`` of hosts (rounded down) as attack victims.

    The paper reports faulty-node fractions of 12.5 %, 25 % and 37.5 %.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    count = int(len(names) * fraction)
    rng = random.Random(seed)
    return rng.sample(list(names), count)


class Attack:
    """Base class: an attack is applied to a network and can be lifted."""

    def __init__(self, targets: Iterable[str]):
        self.targets = list(targets)
        self.active = False

    def apply(self, network: Network) -> None:
        if self.active:
            raise RuntimeError("attack already active")
        self._apply(network)
        self.active = True

    def lift(self, network: Network) -> None:
        if not self.active:
            raise RuntimeError("attack not active")
        self._lift(network)
        self.active = False

    def _apply(self, network: Network) -> None:
        raise NotImplementedError

    def _lift(self, network: Network) -> None:
        raise NotImplementedError


class TakedownAttack(Attack):
    """Knock the target hosts fully offline (volumetric saturation).

    Against a C/S game this needs exactly one target — the server.
    Against the P2P deployment the adversary must take down ≥ 1/3 of the
    peers in *every* room to halt consensus.
    """

    def _apply(self, network: Network) -> None:
        for name in self.targets:
            network.condition(name).down = True

    def _lift(self, network: Network) -> None:
        for name in self.targets:
            network.condition(name).down = False


class LatencyInjectionAttack(Attack):
    """Add ingress latency at the targets (§2.2(2): latency alone suffices).

    ``extra_ms`` around 500 renders an FPS unplayable while leaving the
    host nominally reachable — the "half-second latency" example from the
    paper's motivation.
    """

    def __init__(self, targets: Iterable[str], extra_ms: float = 500.0):
        super().__init__(targets)
        if extra_ms < 0:
            raise ValueError("extra_ms must be non-negative")
        self.extra_ms = extra_ms

    def _apply(self, network: Network) -> None:
        for name in self.targets:
            network.condition(name).extra_ingress_ms += self.extra_ms

    def _lift(self, network: Network) -> None:
        for name in self.targets:
            network.condition(name).extra_ingress_ms -= self.extra_ms


class PartitionAttack(Attack):
    """Split the network into isolated groups (e.g. an attack on the
    upper-tier ISPs connecting data centres, §2.2's Final Fantasy XIV
    example).  ``groups`` are iterables of host names; hosts outside all
    groups form an implicit extra group."""

    def __init__(self, *groups):
        all_names = [name for group in groups for name in group]
        super().__init__(all_names)
        self.groups = [list(group) for group in groups]

    def _apply(self, network: Network) -> None:
        network.partition(*self.groups)

    def _lift(self, network: Network) -> None:
        network.heal()


class FloodAttack(Attack):
    """Probabilistically drop ingress traffic at the targets (queue overflow
    under request floods).  ``drop_rate`` is the fraction of legitimate
    packets crowded out by attack traffic."""

    def __init__(self, targets: Iterable[str], drop_rate: float = 0.9):
        super().__init__(targets)
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        self.drop_rate = drop_rate

    def _apply(self, network: Network) -> None:
        for name in self.targets:
            network.condition(name).ingress_drop_rate = self.drop_rate

    def _lift(self, network: Network) -> None:
        for name in self.targets:
            network.condition(name).ingress_drop_rate = 0.0
