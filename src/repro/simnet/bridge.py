"""Conservative-lookahead time bridge for multi-clock simulations.

The single-process engine runs every shard on one :class:`Scheduler`.
To run shards on *separate* clocks (one per worker process) without
changing any result, the bridge exploits the structure of the sharded
deployment: shards never talk to each other directly — all cross-shard
interaction goes through the control plane (client submissions, swap
2PC steps), and every control→shard injection carries a minimum
modeled transit latency ``lookahead_ms``.  That latency is the
conservative lookahead window of classic CMB-style parallel
discrete-event simulation: if the control plane has processed
everything up to time ``t``, no shard can receive a *new* reactive
injection earlier than ``t + lookahead_ms``, so every shard may safely
advance its local clock that far without waiting.

Execution proceeds in epoch rounds.  Round *k*:

1. The bridge picks the next horizon ``T_k = max(T_{k-1} + L, A)``
   where ``A`` is the earliest possible activity time anywhere (next
   control timer, next queued shard event, earliest buffered command).
   Any ``T <= T_{k-1} + L`` is safe because all activity is strictly
   after ``T_{k-1}``; ``T = A > T_{k-1} + L`` is safe because nothing
   at all can happen in ``(T_{k-1}, A)`` — this is the fast-forward
   that skips idle stretches in one jump.
2. All buffered commands are shipped to their shards (each tagged with
   a global sequence number and an absolute effect time) and every
   shard runs its local scheduler to ``T_k`` inclusive, emitting
   upward events (completions, telemetry) stamped with local time.
3. The bridge merges upward events from all shards in ``(time,
   shard, seq)`` order, schedules them on the control scheduler, and
   runs it to ``T_k`` inclusive.  Control handlers fire at times
   ``t > T_{k-1}``, so any reactive command they submit (effect
   ``t + L > T_{k-1} + L >= T_k``... and strictly ``> T_k`` whenever
   ``T_k <= T_{k-1} + L``) lands beyond the already-executed horizon
   and is delivered at the start of round *k+1* — never late.

Because horizons, command batches and event merges are pure functions
of the (deterministic) shard worlds and control logic, the execution
is bit-identical for any placement of shards onto workers, including
all-in-process.  :meth:`TimeBridge.submit` enforces the invariant at
runtime: a command whose effect time is not strictly beyond the
completed horizon raises :class:`BridgeError` instead of silently
reordering history.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .clock import Scheduler

__all__ = ["BridgeError", "ShardGroupPort", "TimeBridge", "DEFAULT_LOOKAHEAD_MS"]

#: Default control→shard transit latency (simulated ms).  This is a
#: modeled network hop — the control plane (clients, swap coordinator)
#: is "one bridge link away" from every shard — and doubles as the
#: conservative lookahead window.  Larger values mean fewer, fatter
#: epochs (less sync overhead) but coarser reaction latency for the
#: control plane; the value is part of the workload definition and is
#: pinned in perf baselines.
DEFAULT_LOOKAHEAD_MS = 5.0

#: Upward event: ``(time, shard_index, seq, kind, payload)``.
UpEvent = Tuple[float, int, int, str, Any]

#: Downward command: ``(seq, effect_time, op, payload)``.
Command = Tuple[int, float, str, Any]


class BridgeError(RuntimeError):
    """A lookahead/ordering invariant of the time bridge was violated."""


class ShardGroupPort:
    """Interface to one worker hosting one or more shard worlds.

    Implementations (in :mod:`repro.blockchain.shardworker`) run the
    worlds either in-process or in a spawned worker process; the bridge
    only sees this protocol.  ``begin_epoch``/``finish_epoch`` are
    split so the bridge can start every worker's epoch before blocking
    on any of them — that overlap *is* the parallelism.
    """

    #: Shard indices hosted by this port, ascending.
    shard_indices: Tuple[int, ...] = ()

    def begin_epoch(self, until: float, commands: Dict[int, List[Command]]) -> None:
        raise NotImplementedError

    def finish_epoch(self) -> Tuple[List[UpEvent], Dict[int, Dict[str, Any]]]:
        """Returns ``(events, stats)`` where ``stats[shard]`` has keys
        ``pending`` (live events left) and ``next_when`` (time of the
        earliest, or None)."""
        raise NotImplementedError

    def collect_summaries(self) -> Dict[int, Dict[str, Any]]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class TimeBridge:
    """Epoch-barrier synchronizer across shard group ports.

    The control plane (client completion callbacks, the swap
    coordinator's timers) runs on :attr:`control`, a plain
    :class:`Scheduler`; shard-bound work is buffered through
    :meth:`submit` and shipped at epoch boundaries.
    """

    def __init__(self, ports: Sequence[ShardGroupPort], lookahead_ms: float = DEFAULT_LOOKAHEAD_MS):
        if lookahead_ms <= 0:
            raise BridgeError(f"lookahead must be positive, got {lookahead_ms}")
        self.control = Scheduler()
        self.lookahead_ms = float(lookahead_ms)
        self.ports: List[ShardGroupPort] = list(ports)
        self._shard_to_port: Dict[int, ShardGroupPort] = {}
        for port in self.ports:
            for index in port.shard_indices:
                if index in self._shard_to_port:
                    raise BridgeError(f"shard {index} hosted by two ports")
                self._shard_to_port[index] = port
        self._outbox: Dict[int, List[Command]] = {i: [] for i in self._shard_to_port}
        self._cmd_seq = 0
        self._cb_seq = 0
        self._callbacks: Dict[int, Callable[..., Any]] = {}
        #: Horizon through which every shard has already executed.
        self.horizon = 0.0
        #: Last known per-shard (pending, next_when), updated each epoch.
        self._shard_stats: Dict[int, Dict[str, Any]] = {
            i: {"pending": 0, "next_when": None} for i in self._shard_to_port
        }
        self.rounds = 0

    # -- control-plane clock ------------------------------------------

    @property
    def now(self) -> float:
        return self.control.now

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any):
        return self.control.call_at(when, fn, *args)

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any):
        return self.control.call_after(delay, fn, *args)

    # -- downward commands --------------------------------------------

    def register_callback(self, fn: Callable[..., Any]) -> int:
        """Register a one-shot completion callback; returns its id.

        Closures cannot cross a process boundary, so commands carry an
        integer callback id and workers send it back in the completion
        event; :meth:`_dispatch` pops and invokes the registered
        function on the control clock.
        """
        self._cb_seq += 1
        self._callbacks[self._cb_seq] = fn
        return self._cb_seq

    def submit(self, shard: int, op: str, payload: Any, effect_time: Optional[float] = None) -> float:
        """Buffer a command for ``shard`` taking effect at ``effect_time``.

        Reactive submissions (the default) take effect one lookahead
        window after control-plane "now" — that models the bridge
        transit latency and is precisely what makes conservative
        parallel execution sound.  Pre-planned open-loop streams (a
        benchmark's fixed injection schedule) may pass any explicit
        ``effect_time`` beyond the completed horizon.
        """
        if shard not in self._outbox:
            raise BridgeError(f"unknown shard {shard}")
        if effect_time is None:
            effect_time = self.control.now + self.lookahead_ms
        if effect_time < self.horizon:
            # Every shard clock sits exactly at the horizon between
            # rounds, so effect_time == horizon is still schedulable
            # (the event fires FIFO-after anything already executed at
            # that instant — identically for any shard placement);
            # anything earlier would rewrite executed history.
            raise BridgeError(
                f"command for shard {shard} takes effect at t={effect_time:.3f} "
                f"but shards already executed through t={self.horizon:.3f}"
            )
        self._cmd_seq += 1
        self._outbox[shard].append((self._cmd_seq, effect_time, op, payload))
        return effect_time

    # -- epoch loop ----------------------------------------------------

    def _earliest_activity(self) -> Optional[float]:
        candidates: List[float] = []
        control_next = self.control._peek_when()
        if control_next is not None:
            candidates.append(control_next)
        for stats in self._shard_stats.values():
            next_when = stats.get("next_when")
            if next_when is not None:
                candidates.append(next_when)
        for commands in self._outbox.values():
            for _seq, effect, _op, _payload in commands:
                candidates.append(effect)
        return min(candidates) if candidates else None

    def quiescent(self) -> bool:
        return self._earliest_activity() is None and self.control.pending == 0

    def run(self, max_rounds: int = 10_000_000) -> None:
        """Run epoch rounds until globally quiescent."""
        for _ in range(max_rounds):
            earliest = self._earliest_activity()
            if earliest is None:
                return
            until = max(self.horizon + self.lookahead_ms, earliest)
            shipped: Dict[ShardGroupPort, Dict[int, List[Command]]] = {}
            for index, commands in self._outbox.items():
                if commands:
                    port = self._shard_to_port[index]
                    shipped.setdefault(port, {})[index] = commands
            for index in self._outbox:
                self._outbox[index] = []
            # Start every worker's epoch before collecting any results:
            # process-backed ports execute concurrently in this window.
            for port in self.ports:
                port.begin_epoch(until, shipped.get(port, {}))
            merged: List[UpEvent] = []
            for port in self.ports:
                events, stats = port.finish_epoch()
                merged.extend(events)
                self._shard_stats.update(stats)
            self.horizon = until
            # Global order: time, then shard index, then the shard-local
            # emission sequence — a total order identical for any
            # shard→worker placement.
            merged.sort(key=lambda ev: (ev[0], ev[1], ev[2]))
            for event in merged:
                if event[0] > until:
                    raise BridgeError(
                        f"shard {event[1]} emitted an event at t={event[0]:.3f} "
                        f"beyond the epoch horizon t={until:.3f}"
                    )
                self.control.call_at(event[0], self._dispatch, event)
            self.control.run(until=until)
            self.rounds += 1
        raise BridgeError(f"no quiescence within {max_rounds} epoch rounds")

    def _dispatch(self, event: UpEvent) -> None:
        _when, _shard, _seq, kind, payload = event
        if kind == "complete":
            callback_id = payload[0]
            fn = self._callbacks.pop(callback_id, None)
            if fn is not None:
                fn(*payload[1:])
        else:
            raise BridgeError(f"unknown upward event kind {kind!r}")

    def close(self) -> None:
        for port in self.ports:
            port.close()
