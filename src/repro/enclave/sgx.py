"""Secure-enclave execution model (Brandenburger et al. [43]).

The paper's design runs the smart contract inside SGX enclaves for
privacy-preserving consensus but evaluates without them (the Fabric
v1.0 implementation was unavailable), arguing analytically that
enclave execution adds 10–20 % latency plus <1 ms of AES work per
event (§7.2.3, "Validity of results").

We model exactly that:

* :func:`with_enclave` scales a :class:`FabricConfig`'s compute costs by
  the enclave overhead and adds the crypto cost, so any bench can be
  re-run "as if" enclaves were enabled;
* :class:`SecureEnclave` provides the stateful-enclave semantics the
  paper leans on [43]: sealed storage outside the enclave plus a
  monotonic counter making rollback/forking attacks on persistent state
  detectable (§5, Privacy).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict

from ..blockchain.config import FabricConfig

__all__ = [
    "EnclaveError",
    "RollbackError",
    "DEFAULT_OVERHEAD",
    "CRYPTO_MS_PER_EVENT",
    "with_enclave",
    "SealedBlob",
    "SecureEnclave",
]

#: The paper's cited enclave processing overhead range is 10-20%; we
#: default to the middle.
DEFAULT_OVERHEAD = 0.15

#: One decryption of the client message plus one encryption of the asset
#: values, bounded at ~1 ms for sub-1KB Doom messages (§7.2.3).
CRYPTO_MS_PER_EVENT = 1.0


class EnclaveError(RuntimeError):
    """Generic enclave failure."""


class RollbackError(EnclaveError):
    """A stale sealed state was presented to the enclave (rollback or
    forking attack on persistent storage)."""


def with_enclave(
    config: FabricConfig,
    overhead: float = DEFAULT_OVERHEAD,
    crypto_ms: float = CRYPTO_MS_PER_EVENT,
) -> FabricConfig:
    """A config whose compute costs include enclave execution.

    Execution, validation and commit costs grow by ``overhead``; each
    transaction additionally pays ``crypto_ms`` of AES work.
    """
    if not 0.0 <= overhead <= 1.0:
        raise ValueError(f"overhead must be in [0, 1], got {overhead}")
    scale = 1.0 + overhead
    return config.with_options(
        exec_ms_per_tx=config.exec_ms_per_tx * scale + crypto_ms,
        sig_verify_ms=config.sig_verify_ms * scale,
        vote_verify_ms=config.vote_verify_ms * scale,
        sync_verify_ms=config.sync_verify_ms * scale,
        commit_ms_per_tx=config.commit_ms_per_tx * scale,
    )


@dataclass(frozen=True)
class SealedBlob:
    """Encrypted-at-rest enclave state with its monotonic counter."""

    ciphertext: str
    counter: int
    mac: str


class SecureEnclave:
    """A minimal stateful enclave: seal/unseal with rollback protection.

    The sealing "encryption" is keyed hashing over the serialized state
    — enough to give the integrity and freshness semantics the tests
    exercise without real AES.
    """

    def __init__(self, enclave_id: str, measurement: str = "contract-v1"):
        self.enclave_id = enclave_id
        self.measurement = measurement
        self._sealing_key = hashlib.sha256(
            f"seal:{enclave_id}:{measurement}".encode()
        ).hexdigest()
        self._counter = 0

    # ------------------------------------------------------------------
    # sealing

    def _mac(self, ciphertext: str, counter: int) -> str:
        return hashlib.sha256(
            f"{self._sealing_key}:{counter}:{ciphertext}".encode()
        ).hexdigest()

    def seal(self, state: Dict[str, Any]) -> SealedBlob:
        """Seal ``state`` for persistent storage, bumping the counter."""
        self._counter += 1
        ciphertext = json.dumps(state, sort_keys=True)
        return SealedBlob(
            ciphertext=ciphertext,
            counter=self._counter,
            mac=self._mac(ciphertext, self._counter),
        )

    def unseal(self, blob: SealedBlob) -> Dict[str, Any]:
        """Unseal a blob; rejects tampering and rollback.

        A blob whose counter is lower than the enclave's monotonic
        counter is a replay of old state — exactly the attack [69, 76]
        the paper cites against naive enclave persistence.
        """
        if blob.mac != self._mac(blob.ciphertext, blob.counter):
            raise EnclaveError("sealed state failed integrity check")
        if blob.counter < self._counter:
            raise RollbackError(
                f"sealed state counter {blob.counter} is stale "
                f"(enclave counter {self._counter})"
            )
        return json.loads(blob.ciphertext)

    @property
    def counter(self) -> int:
        return self._counter

    def attest(self) -> str:
        """A (simulated) remote attestation quote over the measurement."""
        return hashlib.sha256(
            f"quote:{self.enclave_id}:{self.measurement}".encode()
        ).hexdigest()
