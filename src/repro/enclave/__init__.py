"""Secure-enclave execution model (overhead + sealed-state semantics)."""

from .sgx import (
    CRYPTO_MS_PER_EVENT,
    DEFAULT_OVERHEAD,
    EnclaveError,
    RollbackError,
    SealedBlob,
    SecureEnclave,
    with_enclave,
)

__all__ = [
    "CRYPTO_MS_PER_EVENT",
    "DEFAULT_OVERHEAD",
    "EnclaveError",
    "RollbackError",
    "SealedBlob",
    "SecureEnclave",
    "with_enclave",
]
