"""Game-tracker model: per-room player participation (§7.1 methodology).

"For each game, we compute the average and maximum player participation
per session across top 500 game rooms using data from online game
trackers."  Room occupancies follow a truncated geometric-style
distribution: most rooms are near-empty, a few run at capacity — the
shape visible on gametracker.com listings.
"""

from __future__ import annotations

import random
from typing import List

from .steam import SteamEcosystem

__all__ = ["GameTracker"]


def _truncated_exp_mean_inverse(target: float, cap: float) -> float:
    """The exponential mean ``mu`` such that E[min(Exp(mu), cap)] equals
    ``target`` — solved by bisection (the map is monotone in mu)."""
    import math

    def truncated_mean(mu: float) -> float:
        return mu * (1.0 - math.exp(-cap / mu))

    low, high = 1e-3, cap * 50.0
    if target >= truncated_mean(high):
        return high
    for _ in range(80):
        mid = (low + high) / 2.0
        if truncated_mean(mid) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


class GameTracker:
    """Synthetic gametracker.com: top-room occupancy samples per title."""

    def __init__(self, ecosystem: SteamEcosystem, seed: int = 2018):
        self.ecosystem = ecosystem
        self.seed = seed

    def top_rooms(self, game: str, count: int = 500) -> List[int]:
        """Occupancy of the ``count`` most-populated rooms of a title.

        A mixture of a busy tail (rooms near the player cap) and a bulk
        of sparse rooms drawn from a cap-truncated exponential whose
        mean is moment-matched to the title's published average, so the
        sample mean lands on Table 2's Avg column and the sample max on
        its Max column.
        """
        title = self.ecosystem.title(game)
        rng = random.Random(f"tracker:{self.seed}:{game}")
        cap = title.max_players
        ratio = title.avg_players / cap if cap else 0.0
        p_busy = min(0.3, max(0.01, 0.3 * ratio * ratio))
        busy_mean = 0.9 * cap
        bulk_target = max(
            0.05, (title.avg_players - p_busy * busy_mean) / (1.0 - p_busy)
        )
        mu = _truncated_exp_mean_inverse(bulk_target, cap)
        rooms: List[int] = []
        for _ in range(count):
            if rng.random() < p_busy:
                occupancy = rng.randint(max(1, int(cap * 0.8)), cap)
            else:
                occupancy = min(cap, int(rng.expovariate(1.0 / mu)))
            rooms.append(occupancy)
        # "Top" rooms: at least one is full, as trackers show for live games.
        rooms[0] = cap
        rooms.sort(reverse=True)
        return rooms

    def average_participation(self, game: str, count: int = 500) -> float:
        rooms = self.top_rooms(game, count)
        return sum(rooms) / len(rooms)

    def max_participation(self, game: str, count: int = 500) -> int:
        return max(self.top_rooms(game, count))
