"""The §7.1 modern-games study: synthetic Steam ecosystem + methodology."""

from .measure import SteamStudy, TitleMeasurement
from .steam import LATENCY_BINS, STUDY_TITLES, GameTitle, Server, SteamEcosystem
from .tracker import GameTracker

__all__ = [
    "SteamStudy",
    "TitleMeasurement",
    "LATENCY_BINS",
    "STUDY_TITLES",
    "GameTitle",
    "Server",
    "SteamEcosystem",
    "GameTracker",
]
