"""Synthetic Steam ecosystem for the modern-games study (§7.1).

Substitution (DESIGN.md §2): the paper measured ten Linux FPS titles
through the live Steam console and gametracker.com in 2018.  We model
the ecosystem those measurements sampled: each title carries a server
population with a latency distribution, per-room occupancy statistics
and a client tickrate.  The generative parameters are calibrated to the
published Table 2 rows, and the measurement methodology
(:mod:`repro.study.measure`) re-derives the table by sampling — so the
harness exercises the paper's procedure, not just its numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["GameTitle", "Server", "SteamEcosystem", "STUDY_TITLES", "LATENCY_BINS"]

#: The six latency bins of Fig. 2, in ms.
LATENCY_BINS: Tuple[Tuple[float, float], ...] = (
    (0.0, 50.0),
    (50.0, 100.0),
    (100.0, 150.0),
    (150.0, 250.0),
    (250.0, 350.0),
    (350.0, 600.0),
)


@dataclass(frozen=True)
class GameTitle:
    """Generative parameters for one studied title.

    ``avg_players``/``max_players`` drive the room-occupancy model;
    ``tickrate`` is the client tickrate the console reports;
    ``playable_latency_ms`` is the highest server latency at which a
    10-minute session shows no jitter or lag (the paper's criterion);
    ``bin_weights`` shape the server latency distribution over
    :data:`LATENCY_BINS`.
    """

    name: str
    avg_players: float
    max_players: int
    tickrate: int
    playable_latency_ms: float
    n_servers: int
    bin_weights: Tuple[float, float, float, float, float, float]


@dataclass(frozen=True)
class Server:
    """One game server: its true latency from the measurement vantage."""

    server_id: str
    game: str
    latency_ms: float
    load_failure_rate: float = 0.05


#: The ten Linux/SteamOS FPS titles of Table 2.  ``playable_latency_ms``
#: is set so the measurement procedure (connect in decreasing latency
#: order, keep the first playable) reproduces the published "Average
#: Latency" column; bin weights put the server mass in the 100-350 ms
#: buckets as Fig. 2 shows.
STUDY_TITLES: Tuple[GameTitle, ...] = (
    GameTitle("Counter-Strike 1.6", 25.49, 32, 30, 243.0, 2400,
              (0.03, 0.07, 0.14, 0.30, 0.31, 0.15)),
    GameTitle("Counter-Strike: GO", 18.93, 63, 64, 242.0, 4200,
              (0.04, 0.08, 0.15, 0.31, 0.29, 0.13)),
    GameTitle("Counter-Strike: Source", 14.84, 64, 66, 236.0, 1800,
              (0.03, 0.08, 0.16, 0.30, 0.29, 0.14)),
    GameTitle("Day of Defeat", 4.59, 30, 30, 247.0, 420,
              (0.02, 0.06, 0.13, 0.30, 0.32, 0.17)),
    GameTitle("Double Action: Boogaloo", 0.42, 17, 30, 290.0, 60,
              (0.01, 0.04, 0.10, 0.28, 0.36, 0.21)),
    GameTitle("Half-Life", 1.75, 31, 60, 260.0, 300,
              (0.02, 0.05, 0.12, 0.29, 0.33, 0.19)),
    GameTitle("Half-Life 2: Deathmatch", 0.99, 64, 30, 246.0, 240,
              (0.02, 0.06, 0.14, 0.31, 0.30, 0.17)),
    GameTitle("Left 4 Dead 2", 2.38, 24, 30, 274.0, 900,
              (0.02, 0.05, 0.12, 0.28, 0.34, 0.19)),
    GameTitle("Team Fortress Classic", 0.41, 15, 30, 255.0, 90,
              (0.02, 0.06, 0.13, 0.30, 0.31, 0.18)),
    GameTitle("Team Fortress 2", 5.63, 32, 30, 272.0, 3000,
              (0.02, 0.05, 0.12, 0.29, 0.33, 0.19)),
)


class SteamEcosystem:
    """Deterministic server populations for the ten studied titles."""

    def __init__(self, titles: Optional[Tuple[GameTitle, ...]] = None, seed: int = 2018):
        self.titles = titles if titles is not None else STUDY_TITLES
        self.seed = seed
        self._servers: Dict[str, List[Server]] = {}

    def title(self, name: str) -> GameTitle:
        for title in self.titles:
            if title.name == name:
                return title
        raise KeyError(f"title {name!r} not in the study")

    def servers(self, game: str) -> List[Server]:
        """The (lazily generated) server population for a title."""
        if game not in self._servers:
            self._servers[game] = self._generate(self.title(game))
        return self._servers[game]

    def _generate(self, title: GameTitle) -> List[Server]:
        rng = random.Random(f"steam:{self.seed}:{title.name}")
        servers = []
        for i in range(title.n_servers):
            low, high = rng.choices(LATENCY_BINS, weights=title.bin_weights)[0]
            latency = rng.uniform(low, high)
            servers.append(
                Server(
                    server_id=f"{title.name}/{i}",
                    game=title.name,
                    latency_ms=round(latency, 1),
                    load_failure_rate=0.05,
                )
            )
        return servers

    def bin_distribution(self, game: str) -> List[float]:
        """Fraction of a title's servers in each Fig. 2 latency bin."""
        servers = self.servers(game)
        counts = [0] * len(LATENCY_BINS)
        for server in servers:
            for i, (low, high) in enumerate(LATENCY_BINS):
                if low <= server.latency_ms < high:
                    counts[i] += 1
                    break
        total = len(servers)
        return [c / total for c in counts]
