"""The §7.1 measurement methodology.

"We list Steam servers in decreasing order of latency, and attempt a
connection with each of them.  If the game loads successfully, we play
the game for 10 mins to determine actual playability.  We record the
average latency and default client tickrate, and stop if we do not
perceive any jitter or lag.  Otherwise, we attempt connection to the
next server in the list."

Walking the list in *decreasing* latency order means the procedure
finds the highest-latency server that still plays cleanly — which is
why the reported "Average Latency" column sits at the top of the
playable range (≥230 ms) rather than at the population median.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .steam import SteamEcosystem
from .tracker import GameTracker

__all__ = ["TitleMeasurement", "SteamStudy"]


@dataclass
class TitleMeasurement:
    """One Table 2 row as produced by the methodology."""

    game: str
    avg_players: float
    max_players: int
    avg_latency_ms: float
    tickrate: int
    attempts: int  # connection attempts before a playable session


class SteamStudy:
    """Runs the full §7.1 study over the synthetic ecosystem."""

    def __init__(
        self,
        ecosystem: Optional[SteamEcosystem] = None,
        tracker: Optional[GameTracker] = None,
        seed: int = 2018,
    ):
        self.ecosystem = ecosystem if ecosystem is not None else SteamEcosystem(seed=seed)
        self.tracker = tracker if tracker is not None else GameTracker(self.ecosystem, seed=seed)
        self.seed = seed

    # ------------------------------------------------------------------
    # per-title measurement

    def measure_title(self, game: str, sessions: int = 5) -> TitleMeasurement:
        """Measure one title: participation + playable latency + tickrate.

        ``sessions`` repeats the connect-and-play procedure; the
        reported latency is the mean over sessions (the console shows a
        jittering average).
        """
        title = self.ecosystem.title(game)
        rng = random.Random(f"measure:{self.seed}:{game}")
        latencies: List[float] = []
        total_attempts = 0
        for _ in range(sessions):
            latency, attempts = self._one_session(title, rng)
            latencies.append(latency)
            total_attempts += attempts
        rooms = self.tracker.top_rooms(game)
        return TitleMeasurement(
            game=game,
            avg_players=sum(rooms) / len(rooms),
            max_players=max(rooms),
            avg_latency_ms=sum(latencies) / len(latencies),
            tickrate=title.tickrate,
            attempts=total_attempts,
        )

    def _one_session(self, title, rng: random.Random) -> Tuple[float, int]:
        servers = sorted(
            self.ecosystem.servers(title.name),
            key=lambda s: s.latency_ms,
            reverse=True,
        )
        attempts = 0
        for server in servers:
            attempts += 1
            if rng.random() < server.load_failure_rate:
                continue  # game did not load; try the next server
            # Ten minutes of play: jitter/lag perceived iff the latency
            # exceeds the title's playability threshold (plus mood noise).
            perceived = server.latency_ms + rng.uniform(-5.0, 5.0)
            if perceived <= title.playable_latency_ms:
                return server.latency_ms, attempts
        # Degenerate population: everything lagged; report the best try.
        return servers[-1].latency_ms, attempts

    # ------------------------------------------------------------------
    # the full study

    def table2(self, sessions: int = 5) -> List[TitleMeasurement]:
        """All ten Table 2 rows."""
        return [
            self.measure_title(title.name, sessions=sessions)
            for title in self.ecosystem.titles
        ]

    def figure2(self) -> Dict[str, List[float]]:
        """Fig. 2: per-title server fraction in each latency bin."""
        return {
            title.name: self.ecosystem.bin_distribution(title.name)
            for title in self.ecosystem.titles
        }

    # ------------------------------------------------------------------
    # the take-aways (§7.1 "Results")

    def takeaways(self, sessions: int = 5) -> Dict[str, object]:
        rows = self.table2(sessions=sessions)
        fig2 = self.figure2()
        mid_mass = {
            game: sum(bins[2:5]) for game, bins in fig2.items()  # 100-350 ms
        }
        low_latency_mass = {game: sum(bins[:2]) for game, bins in fig2.items()}
        return {
            # (1) average perceived-playable latency ranges upward of 230 ms
            "min_avg_latency_ms": min(r.avg_latency_ms for r in rows),
            # (2) most clients run tickrate 30; how many exceed it
            "titles_above_tickrate_30": sum(1 for r in rows if r.tickrate > 30),
            # (3) average participation across games; titles with >32 max
            "avg_participation": sum(r.avg_players for r in rows) / len(rows),
            "titles_above_32_players": sum(1 for r in rows if r.max_players > 32),
            # (4) the majority of servers sit in the 100-350 ms buckets
            "min_mid_bucket_mass": min(mid_mass.values()),
            "max_low_latency_mass": max(low_latency_mass.values()),
        }
