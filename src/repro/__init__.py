"""repro — reproduction of "Blockchain-based Real-time Cheat Prevention
and Robustness for Multi-player Online Games" (Kalra, Sanghi, Dhawan —
CoNEXT '18).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the paper's contribution: constraint-spec language
  and code generator, smart contracts, the shim with its batching and
  multithreading optimisations, session orchestration, cheat injection.
* :mod:`repro.blockchain` — a from-scratch Fabric-v1.0-style
  permissioned blockchain (ordering service, MVCC world state, peer
  voting, ledger sync).
* :mod:`repro.simnet` — deterministic discrete-event network simulator
  (latency profiles, DDoS attack models).
* :mod:`repro.game` — Doom rules/clients/traces and Monopoly.
* :mod:`repro.baselines` — C/S server, lockstep P2P, RACS, Table 3 matrix.
* :mod:`repro.rng` — commit-reveal distributed randomness.
* :mod:`repro.enclave` — secure-enclave overhead + sealed-state model.
* :mod:`repro.study` — the §7.1 Steam study.
* :mod:`repro.analysis` — metrics and report rendering.

Quickstart::

    from repro.core import GameSession, CheatInjector
    from repro.simnet import LAN_1GBPS

    session = GameSession(n_peers=4, profile=LAN_1GBPS)
    session.setup()
    results = CheatInjector(session).run_all_relevant()
    assert all(r.prevented for r in results)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
