"""Doom's built-in cheats, classified and injectable (§3.2, §7.2.2).

"Doom supports a total of 15 cheats built into the game, of which only
10 are relevant in our context.  The remaining 5 do not affect the
relevant game state at the server … they only impact client-side
rendering."

Each *relevant* cheat has an injector that produces the offending
transaction(s) through a cheater's shim; prevention means the peers
refuse consensus (the transaction commits as invalid) and the
authoritative state is unchanged.  Cheat-prevention latency is "the
duration between the offending cheat event reaching the shim and the
failure notification received for the corresponding event" — exactly
the per-event latency the shim records.

Protocol-level cheats (replay, spoofing) are injected at the
transaction layer rather than as game events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..blockchain.transaction import TxValidationCode
from ..game.assets import AssetId
from ..game.doom import DoomRules, MapItem, WeaponId
from ..game.events import EventType, GameEvent
from .session import GameSession
from .shim import Shim

__all__ = ["CheatDef", "CheatResult", "CheatInjector", "DOOM_CHEATS", "relevant_cheats"]


@dataclass(frozen=True)
class CheatDef:
    """One built-in cheat code and its classification."""

    code: str
    description: str
    category: str  # "game" | "application" | "protocol" | "infrastructure"
    relevant: bool  # affects server-observable state (preventable)
    injector: Optional[str] = None  # CheatInjector method name


@dataclass
class CheatResult:
    """Outcome of one injection."""

    cheat: CheatDef
    prevented: bool
    validation_code: str
    prevention_latency_ms: Optional[float]


#: All 15 built-in cheats of (Chocolate) Doom.  The five client-only
#: cheats have no injector: they never reach the shim because they do
#: not touch tracked assets — unpreventable in C/S too (§7.2.2).
DOOM_CHEATS: List[CheatDef] = [
    CheatDef("IDDQD", "degreelessness mode: restore/pin health illegally",
             "application", True, "inject_iddqd"),
    CheatDef("IDKFA", "very happy ammo: claim full ammo without pickup",
             "application", True, "inject_idkfa"),
    CheatDef("IDFA", "ammo (no keys): claim a weapon without pickup",
             "application", True, "inject_idfa"),
    CheatDef("IDCHOPPERS", "chainsaw without traversing its map location",
             "application", True, "inject_idchoppers"),
    CheatDef("IDCLIP", "no clipping: move through geometry/teleport",
             "application", True, "inject_idclip"),
    CheatDef("IDCLEV", "level warp: jump to an arbitrary position",
             "application", True, "inject_idclev"),
    CheatDef("IDBEHOLDV", "invulnerability without the power-up",
             "application", True, "inject_idbeholdv"),
    CheatDef("IDBEHOLDS", "berserk without the power-up",
             "application", True, "inject_idbeholds"),
    CheatDef("IDBEHOLDI", "invisibility without the power-up",
             "application", True, "inject_idbeholdi"),
    CheatDef("IDBEHOLDR", "radiation suit without the power-up",
             "application", True, "inject_idbeholdr"),
    CheatDef("IDBEHOLDA", "automap reveal (client-side rendering only)",
             "game", False),
    CheatDef("IDBEHOLDL", "light amplification (client-side only)",
             "game", False),
    CheatDef("IDDT", "full map display (client-side only)", "game", False),
    CheatDef("IDMYPOS", "show own coordinates (client-side only)", "game", False),
    CheatDef("IDMUS", "music change (client-side only)", "game", False),
]

#: Protocol-level attacks from the attack model (§3.2(3)), also
#: exercised by the Table 3 bench.
PROTOCOL_CHEATS: List[CheatDef] = [
    CheatDef("REPLAY", "re-submit a previously committed event",
             "protocol", True, "inject_replay"),
    CheatDef("SPOOF", "forge another player's transaction signature",
             "protocol", True, "inject_spoof"),
]


def relevant_cheats() -> List[CheatDef]:
    return [c for c in DOOM_CHEATS if c.relevant]


class CheatInjector:
    """Injects cheats through one shim of a running session."""

    def __init__(self, session: GameSession, shim: Optional[Shim] = None):
        if not session.started:
            raise RuntimeError("set up the session before injecting cheats")
        self.session = session
        self.shim = shim if shim is not None else session.shims[0]
        self._seq = 1_000_000  # far above any demo sequence number

    # ------------------------------------------------------------------
    # plumbing

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _far_item(self, kind: str) -> MapItem:
        """An item of ``kind`` well outside pickup range of the player.

        The player's authoritative position is refreshed first so the
        locality check cannot be evaded through staleness slack.
        """
        self._refresh_position()
        game_map = self.session.network.game_map
        pos = self._player_position()
        candidates = game_map.items_of_kind(kind)
        if not candidates:
            raise RuntimeError(f"map has no item of kind {kind!r}")
        far = max(candidates, key=lambda i: math.hypot(i.x - pos[0], i.y - pos[1]))
        return far

    def _player_position(self) -> Tuple[float, float]:
        state = self.session.chain.peers[0].ledger.state
        from ..game.assets import asset_key

        pos = state.get(asset_key(self.shim.player, AssetId.POSITION))
        if pos is None:
            raise RuntimeError("player has no authoritative position")
        return pos["x"], pos["y"]

    def _inject_and_wait(self, event: GameEvent) -> CheatResult:
        before = len(self.shim.stats.latencies_ms)
        self.shim.on_game_event(event)
        self.session.run_until_idle()
        codes = self.shim.stats.rejections_by_code
        latency = (
            self.shim.stats.latencies_ms[before]
            if len(self.shim.stats.latencies_ms) > before
            else None
        )
        return before, codes, latency

    def _game_event_cheat(
        self, cheat: CheatDef, etype: str, payload: Dict
    ) -> CheatResult:
        event = GameEvent(
            t_ms=self.session.now, player=self.shim.player, etype=etype,
            payload=payload, seq=self._next_seq(),
        )
        rejected_before = self.shim.stats.rejected_events
        _, _, latency = self._inject_and_wait(event)
        prevented = self.shim.stats.rejected_events > rejected_before
        code = TxValidationCode.CONTRACT_REJECTED if prevented else TxValidationCode.VALID
        return CheatResult(cheat, prevented, code, latency)

    # ------------------------------------------------------------------
    # application cheats (illegal asset updates)

    def inject_iddqd(self, cheat: CheatDef) -> CheatResult:
        """Claim a medkit heal while nowhere near a medkit."""
        item = self._far_item("medkit")
        return self._game_event_cheat(
            cheat, EventType.PICKUP_MEDKIT,
            {"item_id": item.item_id, "t": self.session.now},
        )

    def inject_idkfa(self, cheat: CheatDef) -> CheatResult:
        """Claim an ammo clip while nowhere near one."""
        item = self._far_item("clip")
        return self._game_event_cheat(
            cheat, EventType.PICKUP_CLIP,
            {"item_id": item.item_id, "t": self.session.now},
        )

    def inject_idfa(self, cheat: CheatDef) -> CheatResult:
        """Claim a distant weapon (shotgun) without traversing to it."""
        item = self._far_item(f"weapon:{WeaponId.SHOTGUN}")
        return self._game_event_cheat(
            cheat, EventType.PICKUP_WEAPON,
            {"wid": WeaponId.SHOTGUN, "item_id": item.item_id, "t": self.session.now},
        )

    def inject_idchoppers(self, cheat: CheatDef) -> CheatResult:
        """The paper's worked example: a chainsaw from across the map."""
        item = self._far_item(f"weapon:{WeaponId.CHAINSAW}")
        return self._game_event_cheat(
            cheat, EventType.PICKUP_WEAPON,
            {"wid": WeaponId.CHAINSAW, "item_id": item.item_id, "t": self.session.now},
        )

    def _refresh_position(self) -> Tuple[float, float]:
        """Send a legitimate location update so the authoritative sample
        is fresh — the speed check is relative to the last stored time."""
        x, y = self._player_position()
        legit = GameEvent(
            t_ms=self.session.now, player=self.shim.player,
            etype=EventType.LOCATION,
            payload={"x": x, "y": y, "t": self.session.now},
            seq=self._next_seq(),
        )
        self.shim.on_game_event(legit)
        self.session.run_until_idle()
        return x, y

    def inject_idclip(self, cheat: CheatDef) -> CheatResult:
        """Teleport 1000 units in one tick (wall clipping looks like an
        impossible displacement to the asset tracker)."""
        x, y = self._refresh_position()
        return self._game_event_cheat(
            cheat, EventType.LOCATION,
            {"x": x + 1000.0, "y": y, "t": self.session.now + DoomRules.TICK_MS},
        )

    def inject_idclev(self, cheat: CheatDef) -> CheatResult:
        """Warp to the far corner of the map."""
        self._refresh_position()
        game_map = self.session.network.game_map
        return self._game_event_cheat(
            cheat, EventType.LOCATION,
            {"x": game_map.width - 130.0, "y": game_map.height - 130.0,
             "t": self.session.now + DoomRules.TICK_MS},
        )

    def inject_idbeholdv(self, cheat: CheatDef) -> CheatResult:
        item = self._far_item("invuln")
        return self._game_event_cheat(
            cheat, EventType.PICKUP_INVULN,
            {"item_id": item.item_id, "t": self.session.now},
        )

    def inject_idbeholds(self, cheat: CheatDef) -> CheatResult:
        item = self._far_item("berserk")
        return self._game_event_cheat(
            cheat, EventType.PICKUP_BERSERK,
            {"item_id": item.item_id, "t": self.session.now},
        )

    def inject_idbeholdi(self, cheat: CheatDef) -> CheatResult:
        item = self._far_item("invis")
        return self._game_event_cheat(
            cheat, EventType.PICKUP_INVIS,
            {"item_id": item.item_id, "t": self.session.now},
        )

    def inject_idbeholdr(self, cheat: CheatDef) -> CheatResult:
        item = self._far_item("radsuit")
        return self._game_event_cheat(
            cheat, EventType.PICKUP_RADSUIT,
            {"item_id": item.item_id, "t": self.session.now},
        )

    # ------------------------------------------------------------------
    # protocol cheats (transaction-level)

    def inject_replay(self, cheat: CheatDef) -> CheatResult:
        """Submit a legitimate shoot, then replay its exact nonce."""
        results: List = []
        start = self.session.now
        tx1 = self.shim.build_transaction(
            self.shim.contract_name, EventType.SHOOT,
            ({"count": 1, "t": start},), nonce="replayed-nonce",
        )
        self.shim.submit(tx1, on_complete=lambda r, l: results.append((r, l)))
        self.session.run_until_idle()
        tx2 = self.shim.build_transaction(
            self.shim.contract_name, EventType.SHOOT,
            ({"count": 1, "t": self.session.now},), nonce="replayed-nonce",
        )
        self.shim.submit(tx2, on_complete=lambda r, l: results.append((r, l)))
        self.session.run_until_idle()
        first, second = results[0][0], results[1][0]
        prevented = (
            first.code == TxValidationCode.VALID
            and second.code == TxValidationCode.DUPLICATE_NONCE
        )
        return CheatResult(cheat, prevented, second.code, results[1][1])

    def inject_spoof(self, cheat: CheatDef) -> CheatResult:
        """Submit a transaction whose signature does not verify."""
        results: List = []
        tx = self.shim.build_transaction(
            self.shim.contract_name, EventType.SHOOT,
            ({"count": 1, "t": self.session.now},),
        )
        forged = type(tx)(proposal=tx.proposal, certificate=tx.certificate,
                          signature=424242)
        self.shim.submit(forged, on_complete=lambda r, l: results.append((r, l)))
        self.session.run_until_idle()
        result, latency = results[0]
        prevented = result.code == TxValidationCode.BAD_SIGNATURE
        return CheatResult(cheat, prevented, result.code, latency)

    # ------------------------------------------------------------------
    # driver

    def run(self, cheat: CheatDef) -> CheatResult:
        if cheat.injector is None:
            raise ValueError(
                f"{cheat.code} is client-only: it never reaches the shim"
            )
        return getattr(self, cheat.injector)(cheat)

    def run_all_relevant(self) -> List[CheatResult]:
        out = []
        for cheat in relevant_cheats():
            out.append(self.run(cheat))
        return out
