"""Player anonymity: certificate ↔ player-identity mapping (§4.2.2).

"The initiator shim starts a protocol to generate random numbers at
each peer's shim using secure multi-party computation, and maps each
peer's certificate with its generated random number (representing
unique player identities). … Note that this sensitive communication
happens out-of-band and is not stored on the public ledger."

The random identities come from the commit-reveal RNG of ``repro.rng``
(one round per peer), so no single shim can bias its own — or anyone
else's — player number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..blockchain.identity import Certificate
from ..rng import Participant, distributed_random

__all__ = ["AnonymityError", "AnonymityDirectory", "build_directory"]

_ID_SPACE = 2**32


class AnonymityError(RuntimeError):
    """Mapping construction or lookup failure."""


@dataclass
class AnonymityDirectory:
    """Each shim's private copy of the cert ↔ player-identity mapping.

    The contract never sees it: "the contract at each peer has no
    knowledge of other peer's certificate to player identity mapping",
    which anonymises players in the contract without changing game code.
    """

    _by_subject: Dict[str, str]
    _by_player: Dict[str, str]

    def player_for(self, certificate_subject: str) -> str:
        try:
            return self._by_subject[certificate_subject]
        except KeyError:
            raise AnonymityError(
                f"no player identity for certificate {certificate_subject!r}"
            ) from None

    def subject_for(self, player_identity: str) -> str:
        try:
            return self._by_player[player_identity]
        except KeyError:
            raise AnonymityError(
                f"no certificate for player identity {player_identity!r}"
            ) from None

    def players(self) -> List[str]:
        return list(self._by_player)

    def __len__(self) -> int:
        return len(self._by_subject)


def build_directory(
    certificates: List[Certificate], session_seed=0
) -> AnonymityDirectory:
    """Run one multi-party RNG round per peer to assign identities.

    Every peer contributes to every round, so a single honest
    participant guarantees unbiased identities.  Collisions (vanishingly
    rare in a 32-bit space for ≤64 players) are resolved by re-rolling.
    """
    if not certificates:
        raise AnonymityError("no certificates to anonymise")
    subjects = [c.subject for c in certificates]
    by_subject: Dict[str, str] = {}
    by_player: Dict[str, str] = {}
    for subject in subjects:
        attempt = 0
        while True:
            participants = [
                Participant(peer, seed=f"{session_seed}:{subject}:{attempt}")
                for peer in subjects
            ]
            value, _cheaters = distributed_random(participants, modulus=_ID_SPACE)
            player_id = f"player-{value:08x}"
            if player_id not in by_player:
                break
            attempt += 1
        by_subject[subject] = player_id
        by_player[player_id] = subject
    return AnonymityDirectory(_by_subject=by_subject, _by_player=by_player)
