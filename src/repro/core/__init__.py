"""The paper's primary contribution: constraint spec, codegen, contract,
shim, session orchestration, cheat injection, discovery and anonymity."""

from .anonymity import AnonymityDirectory, AnonymityError, build_directory
from .batching import BatchingReport, count_delays
from .cheats import (
    DOOM_CHEATS,
    PROTOCOL_CHEATS,
    CheatDef,
    CheatInjector,
    CheatResult,
    relevant_cheats,
)
from .codegen import compile_contract_source, generate_contract, generate_contract_source
from .discovery import (
    Advertisement,
    DiscoveryListener,
    JoinAccepted,
    JoinRejected,
    JoinRequest,
    JoiningPeer,
)
from .doom_contract import DoomContract, item_key
from .doomspec import DOOM_SPEC_XML, doom_spec
from .monopoly_contract import MonopolyContract, player_key, property_key
from .netgen import GameNetwork, build_game_network
from .session import GameSession, SessionError, ShardedSessionPool
from .shim import MERGEABLE_EVENTS, Batch, ShardRouter, Shim, ShimConfig, ShimStats
from .spec import (
    AffectsSpec,
    AssetSpec,
    EventSpec,
    GameSpec,
    PlayerSpec,
    PowerSpec,
    SpecError,
    parse_spec,
)

__all__ = [
    "AnonymityDirectory",
    "AnonymityError",
    "build_directory",
    "BatchingReport",
    "count_delays",
    "DOOM_CHEATS",
    "PROTOCOL_CHEATS",
    "CheatDef",
    "CheatInjector",
    "CheatResult",
    "relevant_cheats",
    "compile_contract_source",
    "generate_contract",
    "generate_contract_source",
    "Advertisement",
    "DiscoveryListener",
    "JoinAccepted",
    "JoinRejected",
    "JoinRequest",
    "JoiningPeer",
    "DoomContract",
    "item_key",
    "DOOM_SPEC_XML",
    "doom_spec",
    "MonopolyContract",
    "player_key",
    "property_key",
    "GameNetwork",
    "build_game_network",
    "GameSession",
    "SessionError",
    "ShardedSessionPool",
    "ShardRouter",
    "MERGEABLE_EVENTS",
    "Batch",
    "Shim",
    "ShimConfig",
    "ShimStats",
    "AffectsSpec",
    "AssetSpec",
    "EventSpec",
    "GameSpec",
    "PlayerSpec",
    "PowerSpec",
    "SpecError",
    "parse_spec",
]
