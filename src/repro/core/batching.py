"""Offline windowed-batching model over event traces.

The paper's batching study (Figs. 3d/3e, Table 4) counts events that
"could not be batched in the current time window and thus experienced a
delay", where the window corresponds to "the average validation latency
for the setup".  This module replays a trace through exactly the shim's
lane/batch state machine with a fixed service window per dispatched
batch — an O(n) model that lets the full 25-session dataset be analysed
at every peer configuration without simulating millions of blockchain
messages.  Its semantics are unit-tested against the live shim
(``tests/test_core_shim.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional

from ..game.events import GameEvent, affected_assets
from .shim import MERGEABLE_EVENTS

__all__ = ["BatchingReport", "count_delays"]


@dataclass
class BatchingReport:
    """Aggregate results of one windowed replay."""

    window_ms: float
    batching: bool
    multithreaded: bool
    total_events: int = 0
    delayed_events: int = 0
    dispatched_txs: int = 0
    batched_events: int = 0
    batches: int = 0
    max_batch_size: int = 0
    first_arrival_ms: Optional[float] = None
    last_completion_ms: float = 0.0

    @property
    def avg_batch_size(self) -> float:
        return self.batched_events / self.batches if self.batches else 0.0

    @property
    def throughput_tx_per_s(self) -> float:
        span = self._span_s()
        return self.dispatched_txs / span if span > 0 else 0.0

    @property
    def throughput_events_per_s(self) -> float:
        span = self._span_s()
        return self.total_events / span if span > 0 else 0.0

    def _span_s(self) -> float:
        if self.first_arrival_ms is None:
            return 0.0
        return (self.last_completion_ms - self.first_arrival_ms) / 1000.0


class _ModelBatch:
    __slots__ = ("etype", "last_seq", "size")

    def __init__(self, etype: str, seq: int):
        self.etype = etype
        self.last_seq = seq
        self.size = 1


class _ModelLane:
    __slots__ = ("free_at", "queue")

    def __init__(self) -> None:
        self.free_at = float("-inf")
        self.queue: Deque[_ModelBatch] = deque()


def count_delays(
    events: Iterable[GameEvent],
    window_ms: float,
    batching: bool = True,
    multithreaded: bool = True,
    max_batch: int = 64,
) -> BatchingReport:
    """Replay ``events`` through the shim's dispatch model.

    ``window_ms`` is the per-batch validation time (the measured average
    event-validation latency of the peer setup under study).
    """
    if window_ms <= 0:
        raise ValueError("window_ms must be positive")
    report = BatchingReport(
        window_ms=window_ms, batching=batching, multithreaded=multithreaded
    )
    lanes: Dict[object, _ModelLane] = {}

    def dispatch(lane: _ModelLane, batch: _ModelBatch, start: float) -> None:
        lane.free_at = start + window_ms
        report.dispatched_txs += 1
        report.last_completion_ms = max(report.last_completion_ms, lane.free_at)
        if batch.etype in MERGEABLE_EVENTS or batch.size > 1:
            report.batches += 1
            report.batched_events += batch.size
            report.max_batch_size = max(report.max_batch_size, batch.size)

    for event in events:
        t = event.t_ms
        report.total_events += 1
        if report.first_arrival_ms is None:
            report.first_arrival_ms = t

        if multithreaded:
            assets = affected_assets(event.etype)
            key: object = assets[0] if assets else event.etype
        else:
            key = "single"
        lane = lanes.get(key)
        if lane is None:
            lane = lanes[key] = _ModelLane()

        # Between arrivals, queued batches dispatched back-to-back.
        while lane.queue and lane.free_at <= t:
            dispatch(lane, lane.queue.popleft(), lane.free_at)

        if lane.free_at <= t and not lane.queue:
            dispatch(lane, _ModelBatch(event.etype, event.seq), t)
            continue

        # Delay accounting matches the live shim: an event is delayed
        # when it cannot dispatch, cannot join a batch, and cannot even
        # start the next batch in line — it opens an additional batch
        # behind an existing backlog.
        open_batch = lane.queue[-1] if lane.queue else None
        if (
            batching
            and open_batch is not None
            and open_batch.etype == event.etype
            and event.etype in MERGEABLE_EVENTS
            and event.seq == open_batch.last_seq + 1
            and open_batch.size < max_batch
        ):
            open_batch.last_seq = event.seq
            open_batch.size += 1
            continue

        if lane.queue:
            report.delayed_events += 1
        lane.queue.append(_ModelBatch(event.etype, event.seq))

    # Drain every lane.
    for lane in lanes.values():
        while lane.queue:
            dispatch(lane, lane.queue.popleft(), lane.free_at)

    return report
