"""The Doom smart contract: generated boilerplate + developer logic.

This is the contract the evaluation deploys.  It keeps the generated
boilerplate's shape — ``addPlayer``, ``startGame``, one public API per
event, per-player per-asset KVS — and adds the game-specific validation
the constraint language cannot express ("any additional logic must be
added by the developer himself", §4.1.2): movement-speed geometry,
item-pickup locality/respawn, per-weapon ammunition costs, armour
absorption and power-up timers.

A rejected invocation is a prevented cheat: the peers will not reach
consensus on the offending asset update, and the shim reports failure
to the game client (§7.2.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..blockchain.contracts import Contract, ContractError, InvocationContext
from ..game.assets import AssetId, asset_key
from ..game.doom import DoomMap, DoomRules, RuleViolation, WEAPONS, initial_assets
from ..game.events import EventType

__all__ = ["DoomContract", "item_key"]


def item_key(item_id: str) -> str:
    """World-state key tracking a map item's pickup state."""
    return f"item/{item_id}"


class DoomContract(Contract):
    """Server-side Doom logic as a smart contract.

    Args:
        game_map: the level's item placement (every peer must deploy the
            contract with the same map — the platform guarantees "the
            same contract is deployed on every peer", §4.2.2).
        split_kvs: per-player per-asset keys (§6 opt. i) when True;
            one monolithic key per player when False (the ablation).
        strict_pickups: require pickups to name the map item they
            collect, enabling locality/respawn validation.
    """

    name = "doom"
    MAX_PLAYERS = 4

    def __init__(
        self,
        game_map: Optional[DoomMap] = None,
        split_kvs: bool = True,
        strict_pickups: bool = True,
    ):
        self.map = game_map if game_map is not None else DoomMap.default_map()
        self.split_kvs = split_kvs
        self.strict_pickups = strict_pickups

    # ------------------------------------------------------------------
    # KVS layout (optimisation §6 i)

    def _get(self, ctx: InvocationContext, player: str, aid: int):
        if self.split_kvs:
            value = ctx.view.get(asset_key(player, aid))
        else:
            record = ctx.view.get(f"player/{player}")
            value = None if record is None else record.get(str(aid))
        if value is None:
            raise ContractError(f"player {player} has no asset {aid} (not joined?)")
        return value

    def _put(self, ctx: InvocationContext, player: str, aid: int, value) -> None:
        if self.split_kvs:
            ctx.view.put(asset_key(player, aid), value)
        else:
            record = dict(ctx.view.get(f"player/{player}") or {})
            record[str(aid)] = value
            ctx.view.put(f"player/{player}", record)

    # ------------------------------------------------------------------
    # dispatch

    def invoke(self, ctx: InvocationContext, function: str, args: Tuple[Any, ...]):
        payload: Dict[str, Any] = dict(args[0]) if args else {}
        handler = self._HANDLERS.get(function)
        if handler is None:
            raise ContractError(f"unknown function {function!r}")
        try:
            return handler(self, ctx, payload)
        except RuleViolation as violation:
            raise ContractError(str(violation)) from None

    def functions(self) -> List[str]:
        return list(self._HANDLERS)

    # ------------------------------------------------------------------
    # lifecycle

    def add_player(self, ctx: InvocationContext, payload: Dict) -> None:
        player = ctx.creator
        roster = list(ctx.view.get("game/roster") or [])
        if player in roster:
            raise ContractError(f"player {player} already joined")
        if len(roster) >= self.MAX_PLAYERS:
            raise ContractError("Doom supports at most four players")
        roster.append(player)
        ctx.view.put("game/roster", roster)
        spawn = self.map.spawn_points[(len(roster) - 1) % len(self.map.spawn_points)]
        for aid, value in initial_assets(spawn).items():
            self._put(ctx, player, aid, value)

    def start_game(self, ctx: InvocationContext, payload: Dict) -> None:
        if not ctx.view.get("game/roster"):
            raise ContractError("no players joined")
        if ctx.view.get("game/started"):
            raise ContractError("game already started")
        ctx.view.put("game/started", True)

    def _require_started(self, ctx: InvocationContext) -> None:
        if not ctx.view.get("game/started"):
            raise ContractError("game has not started")

    # ------------------------------------------------------------------
    # event APIs

    def on_location(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        player = ctx.creator
        old = self._get(ctx, player, AssetId.POSITION)
        t = payload.get("t", ctx.timestamp)
        new = DoomRules.validate_move(old, payload["x"], payload["y"], t, self.map)
        self._put(ctx, player, AssetId.POSITION, new)

    def on_shoot(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        player = ctx.creator
        weapon = self._get(ctx, player, AssetId.WEAPON)
        ammo = self._get(ctx, player, AssetId.AMMUNITION)
        remaining = DoomRules.validate_shoot(weapon, ammo, payload.get("count", 1))
        self._put(ctx, player, AssetId.AMMUNITION, remaining)

    def on_weapon_change(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        player = ctx.creator
        weapon = self._get(ctx, player, AssetId.WEAPON)
        self._put(
            ctx, player, AssetId.WEAPON,
            DoomRules.validate_weapon_change(weapon, payload["wid"]),
        )

    def on_damage(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        target = payload.get("target", ctx.creator)
        roster = ctx.view.get("game/roster") or []
        if target not in roster:
            raise ContractError(f"damage target {target!r} not in this game")
        t = payload.get("t", ctx.timestamp)
        health = self._get(ctx, target, AssetId.HEALTH)
        armor = self._get(ctx, target, AssetId.ARMOR)
        new_health, new_armor, _ = DoomRules.apply_damage(
            health, armor, payload["amount"], t
        )
        self._put(ctx, target, AssetId.HEALTH, new_health)
        if new_armor != armor:
            self._put(ctx, target, AssetId.ARMOR, new_armor)

    # ------------------------------------------------------------------
    # pickups

    def _validate_item(
        self, ctx: InvocationContext, payload: Dict, expected_kind: Optional[str]
    ) -> Optional[str]:
        """Validate item locality/respawn; returns the item id consumed."""
        item_id = payload.get("item_id")
        if item_id is None:
            if self.strict_pickups:
                raise ContractError("pickup does not name a map item")
            return None
        item = self.map.item(item_id)
        t = payload.get("t", ctx.timestamp)
        taken = ctx.view.get(item_key(item_id))
        pos = self._get(ctx, ctx.creator, AssetId.POSITION)
        DoomRules.validate_pickup(item, taken, pos, t)
        if expected_kind is not None and item.kind != expected_kind:
            raise ContractError(
                f"item {item_id} is a {item.kind}, not a {expected_kind}"
            )
        ctx.view.put(item_key(item_id), {"taken_at": t, "by": ctx.creator})
        return item_id

    def on_pickup_weapon(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        player = ctx.creator
        wid = payload["wid"]
        if wid not in WEAPONS:
            raise ContractError(f"no such weapon {wid}")
        self._validate_item(ctx, payload, f"weapon:{wid}")
        weapon = dict(self._get(ctx, player, AssetId.WEAPON))
        owned = list(weapon.get("owned", []))
        if wid not in owned:
            owned.append(wid)
        weapon["owned"] = owned
        weapon["current"] = wid
        self._put(ctx, player, AssetId.WEAPON, weapon)
        ammo = self._get(ctx, player, AssetId.AMMUNITION)
        self._put(
            ctx, player, AssetId.AMMUNITION,
            DoomRules.add_ammo(ammo, DoomRules.WEAPON_PICKUP_AMMO),
        )

    def on_pickup_clip(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        self._validate_item(ctx, payload, "clip")
        player = ctx.creator
        ammo = self._get(ctx, player, AssetId.AMMUNITION)
        self._put(
            ctx, player, AssetId.AMMUNITION,
            DoomRules.add_ammo(ammo, DoomRules.CLIP_AMMO),
        )

    def on_pickup_medkit(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        self._validate_item(ctx, payload, "medkit")
        player = ctx.creator
        health = self._get(ctx, player, AssetId.HEALTH)
        self._put(
            ctx, player, AssetId.HEALTH,
            DoomRules.heal(health, DoomRules.MEDKIT_HEAL),
        )

    def _pickup_powerup(
        self, ctx: InvocationContext, payload: Dict, kind: str, aid: int
    ) -> float:
        self._require_started(ctx)
        self._validate_item(ctx, payload, kind)
        t = payload.get("t", ctx.timestamp)
        expiry = t + DoomRules.POWERUP_DURATION_MS
        self._put(ctx, ctx.creator, aid, expiry)
        return expiry

    def on_pickup_radsuit(self, ctx: InvocationContext, payload: Dict) -> None:
        self._pickup_powerup(ctx, payload, "radsuit", AssetId.RADIATION_SUIT)

    def on_pickup_invis(self, ctx: InvocationContext, payload: Dict) -> None:
        self._pickup_powerup(ctx, payload, "invis", AssetId.INVISIBILITY)

    def on_pickup_invuln(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        self._validate_item(ctx, payload, "invuln")
        player = ctx.creator
        t = payload.get("t", ctx.timestamp)
        health = dict(self._get(ctx, player, AssetId.HEALTH))
        health["invuln_until"] = t + DoomRules.POWERUP_DURATION_MS
        self._put(ctx, player, AssetId.HEALTH, health)

    def on_pickup_berserk(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        self._validate_item(ctx, payload, "berserk")
        player = ctx.creator
        t = payload.get("t", ctx.timestamp)
        self._put(ctx, player, AssetId.BERSERK, t + DoomRules.POWERUP_DURATION_MS)
        health = self._get(ctx, player, AssetId.HEALTH)
        self._put(ctx, player, AssetId.HEALTH, DoomRules.heal(health, 100))

    _HANDLERS = {
        "addPlayer": add_player,
        "startGame": start_game,
        EventType.LOCATION: on_location,
        EventType.SHOOT: on_shoot,
        EventType.WEAPON_CHANGE: on_weapon_change,
        EventType.DAMAGE: on_damage,
        EventType.PICKUP_WEAPON: on_pickup_weapon,
        EventType.PICKUP_CLIP: on_pickup_clip,
        EventType.PICKUP_MEDKIT: on_pickup_medkit,
        EventType.PICKUP_RADSUIT: on_pickup_radsuit,
        EventType.PICKUP_INVIS: on_pickup_invis,
        EventType.PICKUP_INVULN: on_pickup_invuln,
        EventType.PICKUP_BERSERK: on_pickup_berserk,
    }
