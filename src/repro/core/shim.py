"""The shim: the interface between game client and smart contract (§4.2).

The shim "encapsulates [client] events and relevant asset information
within a query object along with a nonce", maps them to smart-contract
APIs, submits them as transactions, polls the blockchain every client
tick for commit status, and relays the verdict back as a per-event
acknowledgement — preserving the original C/S communication model.

Both shim-side optimisations of §6 are first-class configuration:

* **multithreading** (:attr:`ShimConfig.multithreaded`) — one dispatch
  lane per asset type, so consensus for different assets proceeds in
  parallel ("each thread must handle only one type of asset");
* **event batching** (:attr:`ShimConfig.batching`) — "similar but
  consecutive events with continuous acknowledgement numbers" merge
  into one query object (five SHOOTs become one decrement-by-five).
  Order is preserved exactly as §4.2.5 requires: an interleaved event
  consumes a sequence number, which breaks consecutiveness and closes
  the open batch.

An event that can neither dispatch immediately nor join the open batch
is *delayed* — the metric of Figs. 3d/3e and Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..blockchain.client import BlockchainClient
from ..blockchain.config import FabricConfig
from ..blockchain.identity import Identity
from ..blockchain.ordering import OrderingService
from ..blockchain.peer import Peer
from ..blockchain.transaction import TxResult, TxValidationCode
from ..game.assets import asset_key
from ..game.events import EventType, GameEvent, affected_assets
from .doom_contract import item_key

__all__ = [
    "ShimConfig", "ShimStats", "Batch", "Shim", "ShardRouter",
    "MERGEABLE_EVENTS",
]

#: Event types whose consecutive occurrences merge into one query object.
MERGEABLE_EVENTS = frozenset({EventType.SHOOT, EventType.LOCATION})


@dataclass
class ShimConfig:
    """Shim-side knobs (§6 optimisations)."""

    multithreaded: bool = True
    batching: bool = True
    split_kvs: bool = True
    poll_interval_ms: float = 1000.0 / 35.0
    max_batch: int = 64


@dataclass
class ShimStats:
    """Counters the evaluation reports."""

    events_received: int = 0
    txs_dispatched: int = 0
    batches_dispatched: int = 0
    batched_events: int = 0
    max_batch_size: int = 0
    delayed_events: int = 0
    accepted_events: int = 0
    rejected_events: int = 0
    rejections_by_code: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    first_event_at: Optional[float] = None
    last_ack_at: Optional[float] = None

    @property
    def avg_latency_ms(self) -> float:
        return sum(self.latencies_ms) / len(self.latencies_ms) if self.latencies_ms else 0.0

    @property
    def avg_batch_size(self) -> float:
        if self.batches_dispatched == 0:
            return 0.0
        return self.batched_events / self.batches_dispatched

    @property
    def events_acked(self) -> int:
        return self.accepted_events + self.rejected_events

    def throughput_tx_per_s(self) -> float:
        if self.first_event_at is None or self.last_ack_at is None:
            return 0.0
        span_s = (self.last_ack_at - self.first_event_at) / 1000.0
        return self.txs_dispatched / span_s if span_s > 0 else 0.0

    def throughput_events_per_s(self) -> float:
        if self.first_event_at is None or self.last_ack_at is None:
            return 0.0
        span_s = (self.last_ack_at - self.first_event_at) / 1000.0
        return self.events_acked / span_s if span_s > 0 else 0.0


@dataclass
class Batch:
    """An open or queued batch of consecutive same-type events."""

    etype: str
    events: List[GameEvent]

    @property
    def last_seq(self) -> int:
        return self.events[-1].seq

    def can_merge(self, event: GameEvent, max_batch: int) -> bool:
        return (
            event.etype == self.etype
            and self.etype in MERGEABLE_EVENTS
            and event.seq == self.last_seq + 1
            and len(self.events) < max_batch
        )

    def merge(self, event: GameEvent) -> None:
        self.events.append(event)

    def payload(self) -> Dict[str, Any]:
        """The merged query-object payload for this batch."""
        last = self.events[-1]
        payload = dict(last.payload)
        payload["t"] = last.t_ms
        if self.etype == EventType.SHOOT:
            payload["count"] = sum(e.payload.get("count", 1) for e in self.events)
        return payload


class _Lane:
    """One dispatch thread: at most one transaction in flight."""

    __slots__ = ("inflight", "queue")

    def __init__(self) -> None:
        self.inflight: Optional[Batch] = None
        self.queue: List[Batch] = []


AckCallback = Callable[[GameEvent, bool, str, float], None]


class Shim(BlockchainClient):
    """The per-player shim.

    ``on_ack(event, accepted, code, latency_ms)`` is invoked for every
    game event once consensus has been reached on its batch — the
    feedback the game client uses for server reconciliation.
    """

    def __init__(
        self,
        name: str,
        region: str,
        identity: Identity,
        orderer: OrderingService,
        anchor_peer: Peer,
        fabric_config: Optional[FabricConfig] = None,
        shim_config: Optional[ShimConfig] = None,
        contract_name: str = "doom",
        on_ack: Optional[AckCallback] = None,
    ):
        shim_config = shim_config if shim_config is not None else ShimConfig()
        super().__init__(
            name=name,
            region=region,
            identity=identity,
            orderer=orderer,
            anchor_peer=anchor_peer,
            config=fabric_config,
            poll_interval_ms=shim_config.poll_interval_ms,
        )
        self.shim_config = shim_config
        self.contract_name = contract_name
        self.on_ack = on_ack
        self.stats = ShimStats()
        self._lanes: Dict[Any, _Lane] = {}
        self._arrival_ms: Dict[int, float] = {}  # seq -> arrival time
        self.closed = False

    @property
    def player(self) -> str:
        """The player identity this shim submits for."""
        return self.identity.name

    # ------------------------------------------------------------------
    # event intake

    def on_game_event(self, event: GameEvent) -> None:
        """Receive one client event (keystroke/game event, §4 workflow)."""
        if self.closed:
            raise RuntimeError("shim torn down: game session has ended")
        now = self.network.scheduler.now
        self.stats.events_received += 1
        if self.stats.first_event_at is None:
            self.stats.first_event_at = now
        self._arrival_ms[event.seq] = now

        lane = self._lane_for(event)
        if lane.inflight is None and not lane.queue:
            batch = Batch(etype=event.etype, events=[event])
            self._dispatch(lane, batch)
            return
        # An event is *delayed* when it "could not be batched in the
        # current time window" (§7.2.4): it neither dispatches
        # immediately, nor joins a batch, nor starts the next batch in
        # line — it has to open an additional batch behind an existing
        # backlog (e.g. after an interleaved event broke sequence
        # continuity, the paper's two-SHOOT-batches example).
        if self.shim_config.batching:
            open_batch = lane.queue[-1] if lane.queue else None
            if open_batch is not None and open_batch.can_merge(
                event, self.shim_config.max_batch
            ):
                open_batch.merge(event)
                return
        if lane.queue:
            self.stats.delayed_events += 1
        lane.queue.append(Batch(etype=event.etype, events=[event]))

    def _lane_for(self, event: GameEvent) -> _Lane:
        if self.shim_config.multithreaded:
            assets = affected_assets(event.etype)
            key: Any = assets[0] if assets else event.etype
        else:
            key = "single"
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = _Lane()
        return lane

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch(self, lane: _Lane, batch: Batch) -> None:
        lane.inflight = batch
        payload = batch.payload()
        touched = self._touched_keys(batch.etype, payload)
        self.stats.txs_dispatched += 1
        if len(batch.events) > 1 or batch.etype in MERGEABLE_EVENTS:
            self.stats.batches_dispatched += 1
            self.stats.batched_events += len(batch.events)
            self.stats.max_batch_size = max(self.stats.max_batch_size, len(batch.events))
        self.invoke(
            self.contract_name,
            batch.etype,
            (payload,),
            touched_keys=touched,
            on_complete=lambda result, _lat: self._on_batch_complete(lane, batch, result),
        )

    #: Assets an event *reads* besides the ones it writes: a shoot needs
    #: the current weapon (ammo cost), and an item-bound pickup checks
    #: the player's position.  Declaring reads keeps them out of blocks
    #: that write the same key, which would MVCC-invalidate them.
    _READ_DEPENDENCIES = {
        EventType.SHOOT: (3,),  # AssetId.WEAPON
    }
    #: Position is read only when the pickup names a map item (the
    #: locality check); unbound pickups skip it.
    _BOUND_PICKUP_READS = (6,)  # AssetId.POSITION

    def _touched_keys(self, etype: str, payload: Dict) -> Tuple[str, ...]:
        """Declare the KVS keys a query will operate on (drives the
        orderer's mutually-exclusive block cutting, §6 opt. ii)."""
        player = payload.get("target", self.player)
        item_bound = payload.get("item_id") is not None
        if self.shim_config.split_kvs:
            aids = list(affected_assets(etype))
            reads = list(self._READ_DEPENDENCIES.get(etype, ()))
            if item_bound and etype.startswith("pickup_"):
                reads.extend(self._BOUND_PICKUP_READS)
            for aid in reads:
                if aid not in aids:
                    aids.append(aid)
            keys = [asset_key(player, aid) for aid in aids]
        else:
            keys = [f"player/{player}"]
        if item_bound:
            keys.append(item_key(payload["item_id"]))
        return tuple(keys)

    # ------------------------------------------------------------------
    # feedback loop (§4.2.5(1))

    def _on_batch_complete(self, lane: _Lane, batch: Batch, result: TxResult) -> None:
        now = self.network.scheduler.now
        accepted = result.code == TxValidationCode.VALID
        batch_latencies: List[float] = []
        for event in batch.events:
            arrival = self._arrival_ms.pop(event.seq, now)
            latency = now - arrival
            self.stats.latencies_ms.append(latency)
            batch_latencies.append(latency)
            self.stats.last_ack_at = now
            if accepted:
                self.stats.accepted_events += 1
            else:
                self.stats.rejected_events += 1
                self.stats.rejections_by_code[result.code] = (
                    self.stats.rejections_by_code.get(result.code, 0) + 1
                )
            if self.on_ack is not None:
                self.on_ack(event, accepted, result.code, latency)
        if self.telemetry is not None:
            self.telemetry.shim_ack(
                self.name, result.tx_id, accepted, result.code,
                batch_latencies, len(batch.events),
            )
        lane.inflight = None
        if lane.queue and not self.closed:
            self._dispatch(lane, lane.queue.pop(0))

    # ------------------------------------------------------------------
    # lifecycle helpers

    def add_player(self, on_complete=None) -> str:
        """Invoke the contract's addPlayer API for this shim's player."""
        return self.invoke(
            self.contract_name, "addPlayer", ({},),
            touched_keys=("game/roster",), on_complete=on_complete,
        )

    def start_game(self, on_complete=None) -> str:
        """Invoke startGame (done once by the initiator shim, §4.2.3)."""
        return self.invoke(
            self.contract_name, "startGame", ({},),
            touched_keys=("game/started",), on_complete=on_complete,
        )

    def teardown(self) -> None:
        """End of session: the blockchain is ephemeral (§4.2.6)."""
        self.closed = True
        for lane in self._lanes.values():
            lane.queue.clear()
        if self._poll_timer is not None:
            self._poll_timer.cancel()
            self._poll_timer = None

    def pending_events(self) -> int:
        return sum(
            (len(lane.inflight.events) if lane.inflight else 0)
            + sum(len(b.events) for b in lane.queue)
            for lane in self._lanes.values()
        )


# ----------------------------------------------------------------------
# shard routing


class ShardRouter:
    """Routes session submissions to the shard owning their keys.

    Sits between game-side code (shims, session pools) and a sharded
    backend: callers keep invoking by *session*, and the router
    resolves the session to its shard (crc32 of the session's key
    prefix — stable across runs) and submits through that shard's
    client.  Game code never names a shard, so re-sharding is a
    deployment change, not a game change.

    Two backends satisfy the routing surface the router needs
    (``n_shards``, ``shard_index_for_session``/``_key``): the classic
    in-process :class:`~repro.blockchain.sharding.ShardedDeployment`
    (direct client invocation) and the process-parallel
    :class:`~repro.blockchain.shardworker.BridgedShardEngine`
    (submissions become routed bridge commands; detected by its
    ``submit_invoke`` method).  Routing is identical either way — it
    is a pure function of the session id.
    """

    def __init__(
        self,
        deployment,
        contract_name: str = "shardasset",
        client_prefix: str = "router",
        poll_interval_ms: Optional[float] = None,
    ):
        self.deployment = deployment
        self.contract_name = contract_name
        self.client_prefix = client_prefix
        self.poll_interval_ms = poll_interval_ms
        self.submitted_by_shard: List[int] = [0] * deployment.n_shards
        self._bridged = hasattr(deployment, "submit_invoke")

    # -- mapping -------------------------------------------------------

    def shard_of_session(self, session_id: str) -> int:
        return self.deployment.shard_index_for_session(session_id)

    def shard_of_key(self, key: str) -> int:
        return self.deployment.shard_index_for_key(key)

    def client_for_session(self, session_id: str) -> BlockchainClient:
        if self._bridged:
            raise TypeError(
                "a bridged engine has no host-side clients; submissions "
                "go through submit()/submit_session_event()"
            )
        return self.deployment.client_for_shard(
            self.shard_of_session(session_id),
            self.client_prefix,
            poll_interval_ms=self.poll_interval_ms,
        )

    # -- routing -------------------------------------------------------

    def submit(
        self,
        session_id: str,
        function: str,
        args: Tuple,
        touched_keys: Tuple[str, ...] = (),
        on_complete=None,
        effect_time: Optional[float] = None,
    ) -> Tuple[int, Optional[str]]:
        """Route one contract invocation to the session's shard.

        Returns ``(shard_index, tx_id)``; the bridged backend builds
        the transaction inside the shard world, so its tx id is not
        known at submission time (``None``).  ``effect_time`` — the
        absolute injection time of a pre-planned stream — is only
        meaningful on the bridged backend (an in-process deployment
        submits immediately; schedule the call instead).
        """
        shard_index = self.shard_of_session(session_id)
        if self._bridged:
            self.deployment.submit_invoke(
                shard_index, function, tuple(args),
                touched_keys=tuple(touched_keys), on_complete=on_complete,
                client_prefix=self.client_prefix,
                poll_interval_ms=(
                    self.poll_interval_ms if self.poll_interval_ms is not None
                    else 1000.0 / 35.0
                ),
                contract=self.contract_name,
                effect_time=effect_time,
            )
            tx_id: Optional[str] = None
        else:
            if effect_time is not None:
                raise TypeError(
                    "effect_time only applies to a bridged engine backend"
                )
            client = self.deployment.client_for_shard(
                shard_index, self.client_prefix,
                poll_interval_ms=self.poll_interval_ms,
            )
            tx_id = client.invoke(
                self.contract_name, function, args,
                touched_keys=touched_keys, on_complete=on_complete,
            )
        self.submitted_by_shard[shard_index] += 1
        return shard_index, tx_id

    def submit_session_event(
        self,
        session_id: str,
        player_id: str,
        delta: int = 1,
        on_complete=None,
        effect_time: Optional[float] = None,
    ) -> Tuple[int, Optional[str]]:
        """Route one game-state update (``sess/<sid>/p/<pid>``)."""
        from ..blockchain.swaps import session_key

        return self.submit(
            session_id, "session_event", (session_id, player_id, delta),
            touched_keys=(session_key(session_id, player_id),),
            on_complete=on_complete,
            effect_time=effect_time,
        )
