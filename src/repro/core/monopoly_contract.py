"""Monopoly smart contract (§7.3 ii — non-repudiation case study).

"Smart contract generation was trivial as player assets are limited to
currency and property."  Dice values come from the off-chain
distributed RNG (:class:`repro.rng.DistributedDice`); the contract
validates that every move is explained by a committed dice roll, and
the blockchain's event log makes every claim verifiable — the
non-repudiation property the case study demonstrates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..blockchain.contracts import Contract, ContractError, InvocationContext
from ..game.monopoly import (
    STANDARD_PROPERTIES,
    MonopolyError,
    MonopolyRules,
    initial_player,
)

__all__ = ["MonopolyContract", "player_key", "property_key"]


def player_key(player: str) -> str:
    return f"mp/player/{player}"


def property_key(square: int) -> str:
    return f"mp/property/{square}"


class MonopolyContract(Contract):
    """Server-side Monopoly logic as a smart contract.

    Public APIs: ``addPlayer``, ``startGame``, ``roll`` (move by a dice
    outcome), ``buy`` (purchase the square stood on) and ``payRent``.
    """

    name = "monopoly"
    MAX_PLAYERS = 8

    def invoke(self, ctx: InvocationContext, function: str, args: Tuple[Any, ...]):
        payload: Dict[str, Any] = dict(args[0]) if args else {}
        handler = self._HANDLERS.get(function)
        if handler is None:
            raise ContractError(f"unknown function {function!r}")
        try:
            return handler(self, ctx, payload)
        except MonopolyError as err:
            raise ContractError(str(err)) from None

    def functions(self) -> List[str]:
        return list(self._HANDLERS)

    # ------------------------------------------------------------------
    # lifecycle

    def add_player(self, ctx: InvocationContext, payload: Dict) -> None:
        player = ctx.creator
        roster = list(ctx.view.get("mp/roster") or [])
        if player in roster:
            raise ContractError(f"player {player} already joined")
        if len(roster) >= self.MAX_PLAYERS:
            raise ContractError("table is full")
        roster.append(player)
        ctx.view.put("mp/roster", roster)
        ctx.view.put(player_key(player), initial_player())

    def start_game(self, ctx: InvocationContext, payload: Dict) -> None:
        roster = ctx.view.get("mp/roster") or []
        if len(roster) < 2:
            raise ContractError("Monopoly needs at least two players")
        if ctx.view.get("mp/started"):
            raise ContractError("game already started")
        ctx.view.put("mp/started", True)

    def _require_started(self, ctx: InvocationContext) -> None:
        if not ctx.view.get("mp/started"):
            raise ContractError("game has not started")

    def _get_player(self, ctx: InvocationContext, player: str) -> Dict:
        state = ctx.view.get(player_key(player))
        if state is None:
            raise ContractError(f"player {player} has not joined")
        return dict(state)

    # ------------------------------------------------------------------
    # moves

    def roll(self, ctx: InvocationContext, payload: Dict) -> None:
        """Move by a dice outcome.

        ``payload['dice']`` is the (d1, d2) pair produced by the
        distributed RNG round ``payload['round']``.  The contract logs
        the roll under a per-round key, so a player cannot claim two
        different outcomes for one round (non-repudiation) and every
        spectator can audit the log.
        """
        self._require_started(ctx)
        player = ctx.creator
        dice = tuple(payload.get("dice", ()))
        round_id = payload.get("round")
        if round_id is None:
            raise ContractError("roll must reference its RNG round")
        steps = MonopolyRules.validate_roll(dice)
        log_key = f"mp/roll/{player}/{round_id}"
        if ctx.view.get(log_key) is not None:
            raise ContractError(f"round {round_id} already consumed")
        ctx.view.put(log_key, {"dice": list(dice), "t": ctx.timestamp})
        state = self._get_player(ctx, player)
        ctx.view.put(player_key(player), MonopolyRules.move(state, steps))

    def buy(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        player = ctx.creator
        state = self._get_player(ctx, player)
        square = state["location"]
        prop = STANDARD_PROPERTIES.get(square)
        ownership = ctx.view.get(property_key(square))
        owner = None if ownership is None else ownership.get("owner")
        new_state = MonopolyRules.validate_purchase(state, prop, owner)
        ctx.view.put(player_key(player), new_state)
        ctx.view.put(property_key(square), {"owner": player, "price": prop.price})

    def pay_rent(self, ctx: InvocationContext, payload: Dict) -> None:
        self._require_started(ctx)
        visitor_name = ctx.creator
        visitor = self._get_player(ctx, visitor_name)
        square = visitor["location"]
        prop = STANDARD_PROPERTIES.get(square)
        if prop is None:
            raise ContractError("no rent due on this square")
        ownership = ctx.view.get(property_key(square))
        if ownership is None or ownership.get("owner") in (None, visitor_name):
            raise ContractError("no rent due: unowned or own property")
        owner_name = ownership["owner"]
        owner = self._get_player(ctx, owner_name)
        rent = MonopolyRules.rent_due(prop, owner_name, visitor)
        new_visitor, new_owner = MonopolyRules.transfer(visitor, owner, rent)
        ctx.view.put(player_key(visitor_name), new_visitor)
        ctx.view.put(player_key(owner_name), new_owner)

    _HANDLERS = {
        "addPlayer": add_player,
        "startGame": start_game,
        "roll": roll,
        "buy": buy,
        "payRent": pay_rent,
    }
