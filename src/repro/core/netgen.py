"""Network generation (§4.2.2): from roster to a deployed game chain.

"Post peer discovery, the initiator shim creates and distributes a
genesis block to all peers … The initiator shim finally deploys the
game smart contract on every peer."

:func:`build_game_network` performs those steps atop
:class:`~repro.blockchain.network.BlockchainNetwork`: one blockchain
peer per player, the Doom contract (same map everywhere) installed on
every peer, one shim per player colocated with its peer, and the
out-of-band anonymity directory built via multi-party randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..blockchain.config import FabricConfig
from ..blockchain.contracts import Contract
from ..blockchain.network import BlockchainNetwork
from ..blockchain.policy import MAJORITY
from ..game.doom import DoomMap
from ..simnet.latency import INTERNET_US, LatencyProfile
from .anonymity import AnonymityDirectory, build_directory
from .doom_contract import DoomContract
from .shim import Shim, ShimConfig

__all__ = ["GameNetwork", "build_game_network"]


@dataclass
class GameNetwork:
    """A ready game deployment: chain, shims and anonymity directory."""

    chain: BlockchainNetwork
    shims: List[Shim]
    directory: AnonymityDirectory
    game_map: DoomMap

    @property
    def scheduler(self):
        return self.chain.scheduler

    @property
    def now(self) -> float:
        return self.chain.now

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        self.chain.run_until_idle(max_events=max_events)

    def run(self, until: Optional[float] = None) -> None:
        self.chain.run(until=until)


def build_game_network(
    n_peers: int,
    n_players: Optional[int] = None,
    profile: LatencyProfile = INTERNET_US,
    fabric_config: Optional[FabricConfig] = None,
    shim_config: Optional[ShimConfig] = None,
    policy: str = MAJORITY,
    game_map: Optional[DoomMap] = None,
    contract_factory: Optional[Callable[[], Contract]] = None,
    player_names: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> GameNetwork:
    """Generate the blockchain network for a game room.

    ``n_peers`` blockchain peers are created (the consensus electorate —
    the paper scales this to 64); ``n_players`` shims (≤ 4 for Doom)
    attach to distinct anchor peers.
    """
    if n_players is None:
        n_players = min(n_peers, 4)
    if n_players < 1:
        raise ValueError("need at least one player")
    if n_players > n_peers:
        raise ValueError("cannot have more players than peers")
    shim_config = shim_config if shim_config is not None else ShimConfig()
    game_map = game_map if game_map is not None else DoomMap.default_map()
    if contract_factory is None:
        contract_factory = lambda: DoomContract(game_map=game_map)  # noqa: E731

    chain = BlockchainNetwork(
        n_peers=n_peers,
        profile=profile,
        config=fabric_config,
        policy=policy,
        seed=seed,
    )
    chain.install_contract(contract_factory)

    if player_names is None:
        player_names = [f"p{i + 1}" for i in range(n_players)]
    elif len(player_names) != n_players:
        raise ValueError("one name required per player")

    shims: List[Shim] = []
    for i, player in enumerate(player_names):
        anchor = chain.peers[i % len(chain.peers)]
        identity = chain.ca.enroll(player)
        shim = Shim(
            name=f"shim-{player}",
            region=anchor.region,
            identity=identity,
            orderer=chain.orderer,
            anchor_peer=anchor,
            fabric_config=chain.config,
            shim_config=shim_config,
        )
        chain.net.register(shim)
        shims.append(shim)

    directory = build_directory(
        [shim.identity.certificate for shim in shims], session_seed=seed
    )
    return GameNetwork(chain=chain, shims=shims, directory=directory, game_map=game_map)
