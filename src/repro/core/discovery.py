"""Peer discovery (§4.2.1).

"Our approach assumes that there is one starting peer, akin to the
player starting a game room. … the shim advertises the smart contract
for the game and its associated consensus policy.  Specifically, it
listens for incoming connections from other peers for a designated time
duration.  Interested peers communicate their intent to play the game
by sending their credentials, i.e., PKI certificates and IP address, to
the initiator shim."

The prototype's discovery is "REST-ful … for ease of implementation"
(§6 iii); here it is message-driven over the simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..blockchain.identity import Certificate
from ..simnet.topology import Host

__all__ = [
    "Advertisement",
    "JoinRequest",
    "JoinAccepted",
    "JoinRejected",
    "DiscoveryListener",
    "JoiningPeer",
]


@dataclass(frozen=True)
class Advertisement:
    """What the initiator advertises: the contract and consensus policy."""

    game: str
    contract_digest: str
    consensus_policy: str
    listen_window_ms: float


@dataclass(frozen=True)
class JoinRequest:
    """A peer's credentials: PKI certificate and IP address."""

    certificate: Certificate
    ip_address: str


@dataclass(frozen=True)
class JoinAccepted:
    game: str
    roster_position: int


@dataclass(frozen=True)
class JoinRejected:
    game: str
    reason: str


class DiscoveryListener(Host):
    """The initiator shim's listener.

    Accepts join requests while the window is open (and the room has
    space), then closes with the final roster.  ``on_closed`` receives
    the list of accepted :class:`JoinRequest` objects.
    """

    def __init__(
        self,
        name: str,
        region: str,
        advertisement: Advertisement,
        max_peers: int,
        validate_certificate: Callable[[Certificate], bool],
        on_closed: Optional[Callable[[List[JoinRequest]], None]] = None,
    ):
        super().__init__(name, region)
        if max_peers < 1:
            raise ValueError("a game room needs at least one slot")
        self.advertisement = advertisement
        self.max_peers = max_peers
        self.validate_certificate = validate_certificate
        self.on_closed = on_closed
        self.roster: List[JoinRequest] = []
        self.closed = False
        self._window_timer = None

    def open(self) -> None:
        """Start listening for the advertised window."""
        self._window_timer = self.network.scheduler.call_after(
            self.advertisement.listen_window_ms, self.close
        )

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._window_timer is not None:
            self._window_timer.cancel()
        if self.on_closed is not None:
            self.on_closed(list(self.roster))

    def handle_message(self, src: Host, payload) -> None:
        if not isinstance(payload, JoinRequest):
            raise TypeError(f"listener cannot handle {type(payload).__name__}")
        reply = self._consider(payload)
        self.send(src, reply, size_bytes=256)
        if len(self.roster) >= self.max_peers:
            self.close()

    def _consider(self, request: JoinRequest):
        if self.closed:
            return JoinRejected(self.advertisement.game, "listen window closed")
        if len(self.roster) >= self.max_peers:
            return JoinRejected(self.advertisement.game, "game room is full")
        if any(r.certificate.subject == request.certificate.subject for r in self.roster):
            return JoinRejected(self.advertisement.game, "already joined")
        if not self.validate_certificate(request.certificate):
            return JoinRejected(self.advertisement.game, "invalid certificate")
        self.roster.append(request)
        return JoinAccepted(self.advertisement.game, len(self.roster) - 1)


class JoiningPeer(Host):
    """A peer that answers an advertisement with its credentials."""

    def __init__(self, name: str, region: str, certificate: Certificate, ip: str):
        super().__init__(name, region)
        self.certificate = certificate
        self.ip = ip
        self.outcome = None  # JoinAccepted / JoinRejected

    def join(self, listener: DiscoveryListener) -> None:
        self.send(listener, JoinRequest(self.certificate, self.ip), size_bytes=2048)

    def handle_message(self, src: Host, payload) -> None:
        if isinstance(payload, (JoinAccepted, JoinRejected)):
            self.outcome = payload
        else:
            raise TypeError(f"joining peer cannot handle {type(payload).__name__}")
