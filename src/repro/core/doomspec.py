"""The full Doom constraint specification (Fig. 1, completed).

The paper's Fig. 1 shows a snippet; this is the complete instance the
prototype registers: 9 assets, 11 events and up to 4 players (Doom's
multi-player maximum).

The constraint language expresses additive/multiplicative asset updates
with bounds.  Structured behaviour (position geometry, item pickups at
map locations, per-weapon ammo costs) is the "additional logic [that]
must be added by the developer himself" (§4.1.2) — see
``repro.core.doom_contract``.
"""

from __future__ import annotations

from .spec import GameSpec, parse_spec

__all__ = ["DOOM_SPEC_XML", "doom_spec"]

DOOM_SPEC_XML = """
<GameSpec name="Doom">
  <Assets>
    <Asset aId="1" value="100" name="Health" min="0" max="200">
      <power pwId="0" change="+" factor="-1" />
      <power pwId="2" change="+" factor="1" />
      <power pwId="3" change="+" factor="25" />
    </Asset>
    <Asset aId="2" value="50" name="Ammunition" min="0" max="400">
      <power pwId="0" change="+" factor="-1" />
      <power pwId="1" change="+" factor="10" />
      <power pwId="2" change="+" factor="20" />
    </Asset>
    <Asset aId="3" value="2" name="Weapon" min="0" max="7">
      <power pwId="0" change="+" factor="1" />
      <power pwId="1" change="+" factor="-1" />
    </Asset>
    <Asset aId="4" value="0" name="Armor" min="0" max="200">
      <power pwId="0" change="+" factor="-1" />
      <power pwId="1" change="+" factor="100" />
    </Asset>
    <Asset aId="5" value="0" name="Keys" min="0" max="7">
      <power pwId="0" change="+" factor="1" />
    </Asset>
    <Asset aId="6" value="0" name="Position" min="0">
      <power pwId="0" change="+" factor="1" />
    </Asset>
    <Asset aId="7" value="0" name="Invisibility" min="0">
      <power pwId="0" change="+" factor="1" />
    </Asset>
    <Asset aId="8" value="0" name="RadiationSuit" min="0">
      <power pwId="0" change="+" factor="1" />
    </Asset>
    <Asset aId="9" value="0" name="Berserk" min="0">
      <power pwId="0" change="+" factor="1" />
    </Asset>
  </Assets>
  <Players>
    <player pId="1"> Player 1 </player>
    <player pId="2"> Player 2 </player>
    <player pId="3"> Player 3 </player>
    <player pId="4"> Player 4 </player>
  </Players>
  <Events>
    <Event eId="1" name="Shoot">
      <affects pId="self" aId="2" pwId="0" />
    </Event>
    <Event eId="2" name="WeaponChange">
      <affects pId="self" aId="3" pwId="0" />
    </Event>
    <Event eId="3" name="Damage">
      <affects pId="self" aId="1" pwId="0" />
    </Event>
    <Event eId="4" name="PickupWeapon">
      <affects pId="self" aId="3" pwId="0" />
      <affects pId="self" aId="2" pwId="2" />
    </Event>
    <Event eId="5" name="PickupClip">
      <affects pId="self" aId="2" pwId="1" />
    </Event>
    <Event eId="6" name="PickupMedkit">
      <affects pId="self" aId="1" pwId="3" />
    </Event>
    <Event eId="7" name="PickupRadsuit">
      <affects pId="self" aId="8" pwId="0" />
    </Event>
    <Event eId="8" name="PickupInvuln">
      <affects pId="self" aId="1" pwId="2" />
    </Event>
    <Event eId="9" name="PickupInvis">
      <affects pId="self" aId="7" pwId="0" />
    </Event>
    <Event eId="10" name="PickupBerserk">
      <affects pId="self" aId="9" pwId="0" />
      <affects pId="self" aId="1" pwId="3" />
    </Event>
    <Event eId="11" name="Location">
      <affects pId="self" aId="6" pwId="0" />
    </Event>
  </Events>
</GameSpec>
"""


def doom_spec() -> GameSpec:
    """The parsed, validated Doom specification."""
    return parse_spec(DOOM_SPEC_XML)
