"""Game-session orchestration: instantiate, replay, measure, tear down.

:class:`GameSession` drives the full §4.2 lifecycle: network generation
(via :mod:`repro.core.netgen`), game instantiation (``addPlayer`` per
shim, then ``startGame`` from the initiator shim, §4.2.3), demo replay
through the shims at trace timestamps, and blockchain teardown at the
end of the ephemeral session (§4.2.6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..blockchain.config import FabricConfig
from ..blockchain.policy import MAJORITY
from ..blockchain.transaction import TxValidationCode
from ..game.demo import Demo
from ..game.doom import DoomMap
from ..game.events import GameEvent
from ..simnet.latency import INTERNET_US, LatencyProfile
from .netgen import GameNetwork, build_game_network
from .shim import ShardRouter, Shim, ShimConfig, ShimStats

__all__ = ["SessionError", "GameSession", "ShardedSessionPool"]


class SessionError(RuntimeError):
    """Invalid session lifecycle operation."""


class GameSession:
    """A blockchain-backed multi-player game session.

    Typical use::

        session = GameSession(n_peers=4)
        session.setup()                 # join players, start the game
        session.play_demo(demo)         # schedule a trace through shim 0
        session.run_until_idle()
        print(session.shims[0].stats.avg_latency_ms)
        session.teardown()
    """

    def __init__(
        self,
        n_peers: int,
        n_players: Optional[int] = None,
        profile: LatencyProfile = INTERNET_US,
        fabric_config: Optional[FabricConfig] = None,
        shim_config: Optional[ShimConfig] = None,
        policy: str = MAJORITY,
        game_map: Optional[DoomMap] = None,
        player_names: Optional[Sequence[str]] = None,
        contract_factory=None,
        seed: int = 0,
    ):
        self.network: GameNetwork = build_game_network(
            n_peers=n_peers,
            n_players=n_players,
            profile=profile,
            fabric_config=fabric_config,
            shim_config=shim_config,
            policy=policy,
            game_map=game_map,
            player_names=player_names,
            contract_factory=contract_factory,
            seed=seed,
        )
        self.started = False
        self.ended = False
        self._setup_failures: List[str] = []

    # ------------------------------------------------------------------
    # accessors

    @property
    def shims(self) -> List[Shim]:
        return self.network.shims

    @property
    def chain(self):
        return self.network.chain

    @property
    def scheduler(self):
        return self.network.scheduler

    @property
    def now(self) -> float:
        return self.network.now

    def shim_for(self, player: str) -> Shim:
        for shim in self.shims:
            if shim.player == player:
                return shim
        raise SessionError(f"no shim for player {player!r}")

    # ------------------------------------------------------------------
    # lifecycle (§4.2.3)

    def setup(self) -> None:
        """Join every player and start the game.

        addPlayer transactions all touch the shared roster key, so they
        are submitted one at a time (setup is a one-off, §4.2.2).
        """
        if self.started:
            raise SessionError("session already set up")

        def expect_valid(result, _latency):
            if result.code != TxValidationCode.VALID:
                self._setup_failures.append(f"{result.tx_id}: {result.code}")

        for shim in self.shims:
            shim.add_player(on_complete=expect_valid)
            self.network.run_until_idle()
        self.shims[0].start_game(on_complete=expect_valid)
        self.network.run_until_idle()
        if self._setup_failures:
            raise SessionError(f"setup failed: {self._setup_failures}")
        self.started = True

    # ------------------------------------------------------------------
    # replay

    def play_demo(
        self,
        demo: Demo,
        shim: Optional[Shim] = None,
        speedup: float = 1.0,
    ) -> None:
        """Schedule a demo's events through a shim at trace timestamps.

        ``speedup`` > 1 compresses time (stress replay).  The shim must
        belong to this session and the session must be set up.
        """
        if not self.started:
            raise SessionError("call setup() before replaying demos")
        if self.ended:
            raise SessionError("session has been torn down")
        shim = shim if shim is not None else self.shims[0]
        offset = self.now
        for event in demo.events:
            when = offset + event.t_ms / speedup
            self.scheduler.call_at(when, self._feed_event, shim, event)

    def _feed_event(self, shim: Shim, event: GameEvent) -> None:
        if not self.ended:
            shim.on_game_event(event)

    def inject_event(self, event: GameEvent, shim: Optional[Shim] = None) -> None:
        """Feed a single event right now (used by cheat injection)."""
        if not self.started:
            raise SessionError("call setup() before injecting events")
        if self.ended:
            raise SessionError("session has been torn down")
        shim = shim if shim is not None else self.shims[0]
        shim.on_game_event(event)

    # ------------------------------------------------------------------
    # running

    def run(self, until: Optional[float] = None) -> None:
        self.network.run(until=until)

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        self.network.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    # metrics

    def stats(self, shim_index: int = 0) -> ShimStats:
        return self.shims[shim_index].stats

    def combined_rejections(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for shim in self.shims:
            for code, count in shim.stats.rejections_by_code.items():
                out[code] = out.get(code, 0) + count
        return out

    def ledgers_agree(self) -> bool:
        """All reachable peers hold identical state (sanity invariant)."""
        hashes = {
            peer.ledger.state_hash()
            for peer in self.chain.peers
            if not self.chain.net.condition(peer.name).down
        }
        return len(hashes) == 1

    # ------------------------------------------------------------------
    # teardown (§4.2.6)

    def teardown(self) -> None:
        """End the ephemeral session and tear down the blockchain.

        "Since a game session is ephemeral and state does not persist
        across sessions, the shim tears down the blockchain at the end
        of the game session."
        """
        if self.ended:
            return
        self.ended = True
        for shim in self.shims:
            shim.teardown()


# ----------------------------------------------------------------------
# many sessions, one sharded deployment


class ShardedSessionPool:
    """Thousands of lightweight sessions over one sharded deployment.

    A full :class:`GameSession` builds its own blockchain per room; at
    MMOG scale (the ``sharded-replay`` workloads simulate 1000+ sessions
    and 100k+ players) sessions are instead multiplexed onto the shards
    of one :class:`~repro.blockchain.sharding.ShardedDeployment` — or,
    for process-parallel runs, onto a
    :class:`~repro.blockchain.shardworker.BridgedShardEngine` (the
    router detects the backend; routing is identical).  Each session's
    entire key space (``sess/<id>/...``) lives on the shard the
    :class:`~repro.core.shim.ShardRouter` assigns it, so in-session
    events are single-shard transactions; only cross-session trades can
    cross shards (and go through the swap protocol).
    """

    def __init__(
        self,
        deployment,
        n_sessions: int,
        players_per_session: int = 100,
        contract_name: str = "shardasset",
        poll_interval_ms: Optional[float] = None,
    ):
        if n_sessions < 1:
            raise SessionError("need at least one session")
        self.deployment = deployment
        self.n_sessions = n_sessions
        self.players_per_session = players_per_session
        self.router = ShardRouter(
            deployment, contract_name=contract_name,
            poll_interval_ms=poll_interval_ms,
        )
        self.events_submitted = 0

    def session_id(self, index: int) -> str:
        if not 0 <= index < self.n_sessions:
            raise SessionError(f"no session #{index}")
        return f"g{index:05d}"

    def player_id(self, player_index: int) -> str:
        if not 0 <= player_index < self.players_per_session:
            raise SessionError(f"no player #{player_index}")
        return f"p{player_index:03d}"

    @property
    def n_players(self) -> int:
        return self.n_sessions * self.players_per_session

    def shard_of(self, session_index: int) -> int:
        return self.router.shard_of_session(self.session_id(session_index))

    def sessions_per_shard(self) -> List[int]:
        counts = [0] * self.deployment.n_shards
        for index in range(self.n_sessions):
            counts[self.shard_of(index)] += 1
        return counts

    def submit_event(
        self,
        session_index: int,
        player_index: int,
        delta: int = 1,
        on_complete=None,
        effect_time=None,
    ):
        """One in-session game-state update, routed to its shard.

        ``effect_time`` (absolute sim ms) pre-plans the injection on a
        bridged engine backend; in-process deployments submit now.
        """
        self.events_submitted += 1
        return self.router.submit_session_event(
            self.session_id(session_index),
            self.player_id(player_index),
            delta,
            on_complete=on_complete,
            effect_time=effect_time,
        )
