"""The constraint-specification language of Table 1.

    Power   (pwId, change, factor)   pwId ∈ N, change ∈ {+, ×}, factor ∈ Z
    Asset   (aId, value, name, {power})   aId ∈ N, value ∈ R≥0
    Player  {pId}                    1 ≤ pId ≤ MaxP
    Affects (pId, aId, pwId)         pId ∈ (N ∪ {self, *})
    Event   (eId, name, {affects})   1 ≤ eId ≤ MaxE

Specifications are written in the XML dialect of Fig. 1 and parsed into
the dataclasses below; :mod:`repro.core.codegen` turns a parsed spec
into smart-contract source code.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "SpecError",
    "PowerSpec",
    "AssetSpec",
    "PlayerSpec",
    "AffectsSpec",
    "EventSpec",
    "GameSpec",
    "parse_spec",
]

#: Table 1's bounds on player and event identifiers.
MAX_PLAYERS = 64
MAX_EVENTS = 64

ADDITIVE = "+"
MULTIPLICATIVE = "x"
_CHANGE_ALIASES = {"+": ADDITIVE, "x": MULTIPLICATIVE, "×": MULTIPLICATIVE, "*": MULTIPLICATIVE}

SELF = "self"
ANY = "*"


class SpecError(ValueError):
    """A malformed or internally inconsistent specification."""


@dataclass(frozen=True)
class PowerSpec:
    """A mode of operation of an asset: how its value changes."""

    pw_id: int
    change: str  # ADDITIVE or MULTIPLICATIVE
    factor: int

    def apply(self, value: float) -> float:
        if self.change == ADDITIVE:
            return value + self.factor
        return value * self.factor


@dataclass(frozen=True)
class AssetSpec:
    aid: int
    value: float  # default valuation, ∈ R≥0
    name: str
    powers: Tuple[PowerSpec, ...] = ()
    #: optional bounds enforced by the generated contract
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def power(self, pw_id: int) -> PowerSpec:
        for power in self.powers:
            if power.pw_id == pw_id:
                return power
        raise SpecError(f"asset {self.name!r} has no power {pw_id}")


@dataclass(frozen=True)
class PlayerSpec:
    pid: int
    name: str


@dataclass(frozen=True)
class AffectsSpec:
    """One effect of an event: apply power ``pw_id`` of asset ``aid`` to
    player ``pid`` (a fixed id, ``self`` = the submitting player, or
    ``*`` = a target player named in the event arguments)."""

    pid: Union[int, str]
    aid: int
    pw_id: int


@dataclass(frozen=True)
class EventSpec:
    eid: int
    name: str
    affects: Tuple[AffectsSpec, ...] = ()


@dataclass
class GameSpec:
    """A complete parsed game specification."""

    name: str
    assets: Dict[int, AssetSpec]
    players: Dict[int, PlayerSpec]
    events: Dict[int, EventSpec]

    def asset_by_name(self, name: str) -> AssetSpec:
        for asset in self.assets.values():
            if asset.name == name:
                return asset
        raise SpecError(f"no asset named {name!r}")

    def event_by_name(self, name: str) -> EventSpec:
        for event in self.events.values():
            if event.name == name:
                return event
        raise SpecError(f"no event named {name!r}")

    def validate(self) -> None:
        """Check Table 1's constraints and referential integrity."""
        for asset in self.assets.values():
            if asset.aid < 0:
                raise SpecError(f"aId must be a natural number, got {asset.aid}")
            if asset.value < 0:
                raise SpecError(
                    f"asset {asset.name!r} default value must be >= 0"
                )
            pw_ids = [p.pw_id for p in asset.powers]
            if len(pw_ids) != len(set(pw_ids)):
                raise SpecError(f"duplicate power ids on asset {asset.name!r}")
        for player in self.players.values():
            if not 1 <= player.pid <= MAX_PLAYERS:
                raise SpecError(f"pId {player.pid} outside [1, {MAX_PLAYERS}]")
        for event in self.events.values():
            if not 1 <= event.eid <= MAX_EVENTS:
                raise SpecError(f"eId {event.eid} outside [1, {MAX_EVENTS}]")
            for affects in event.affects:
                if affects.aid not in self.assets:
                    raise SpecError(
                        f"event {event.name!r} affects unknown asset {affects.aid}"
                    )
                asset = self.assets[affects.aid]
                asset.power(affects.pw_id)  # raises if missing
                if isinstance(affects.pid, int) and affects.pid not in self.players:
                    raise SpecError(
                        f"event {event.name!r} affects unknown player {affects.pid}"
                    )
                if isinstance(affects.pid, str) and affects.pid not in (SELF, ANY):
                    raise SpecError(
                        f"event {event.name!r} has invalid pId {affects.pid!r}"
                    )


def _parse_int(text: Optional[str], what: str) -> int:
    try:
        return int(text)
    except (TypeError, ValueError):
        raise SpecError(f"{what} must be an integer, got {text!r}") from None


def _parse_power(node: ET.Element) -> PowerSpec:
    change_raw = node.get("change", "")
    change = _CHANGE_ALIASES.get(change_raw)
    if change is None:
        raise SpecError(f"power change must be '+' or 'x', got {change_raw!r}")
    return PowerSpec(
        pw_id=_parse_int(node.get("pwId"), "pwId"),
        change=change,
        factor=_parse_int(node.get("factor"), "factor"),
    )


def _parse_asset(node: ET.Element) -> AssetSpec:
    try:
        value = float(node.get("value"))
    except (TypeError, ValueError):
        raise SpecError(f"asset value must be a number, got {node.get('value')!r}")
    minimum = node.get("min")
    maximum = node.get("max")
    return AssetSpec(
        aid=_parse_int(node.get("aId"), "aId"),
        value=value,
        name=node.get("name", f"asset{node.get('aId')}"),
        powers=tuple(_parse_power(p) for p in node.findall("power")),
        minimum=float(minimum) if minimum is not None else None,
        maximum=float(maximum) if maximum is not None else None,
    )


def _parse_affects(node: ET.Element) -> AffectsSpec:
    pid_raw = node.get("pId", "")
    pid: Union[int, str]
    if pid_raw in (SELF, ANY):
        pid = pid_raw
    else:
        pid = _parse_int(pid_raw, "pId")
    return AffectsSpec(
        pid=pid,
        aid=_parse_int(node.get("aId"), "aId"),
        pw_id=_parse_int(node.get("pwId"), "pwId"),
    )


def parse_spec(xml_text: str) -> GameSpec:
    """Parse a Fig.-1-style XML specification and validate it."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as err:
        raise SpecError(f"malformed XML: {err}") from None

    assets: Dict[int, AssetSpec] = {}
    assets_node = root.find("Assets")
    if assets_node is None:
        raise SpecError("specification has no <Assets> section")
    for node in assets_node.findall("Asset"):
        asset = _parse_asset(node)
        if asset.aid in assets:
            raise SpecError(f"duplicate aId {asset.aid}")
        assets[asset.aid] = asset

    players: Dict[int, PlayerSpec] = {}
    players_node = root.find("Players")
    if players_node is None:
        raise SpecError("specification has no <Players> section")
    for node in players_node.findall("player"):
        pid = _parse_int(node.get("pId"), "pId")
        if pid in players:
            raise SpecError(f"duplicate pId {pid}")
        players[pid] = PlayerSpec(pid=pid, name=(node.text or "").strip() or f"Player {pid}")

    events: Dict[int, EventSpec] = {}
    events_node = root.find("Events")
    if events_node is None:
        raise SpecError("specification has no <Events> section")
    for node in events_node.findall("Event"):
        eid = _parse_int(node.get("eId"), "eId")
        if eid in events:
            raise SpecError(f"duplicate eId {eid}")
        events[eid] = EventSpec(
            eid=eid,
            name=node.get("name", f"event{eid}"),
            affects=tuple(_parse_affects(a) for a in node.findall("affects")),
        )

    spec = GameSpec(
        name=root.get("name", "Game"),
        assets=assets,
        players=players,
        events=events,
    )
    spec.validate()
    return spec
