"""Sustained multi-session soak runs over either transport backend.

The chaos harness (``repro.chaos``) answers "does one scripted fault
scenario preserve the invariants?" on the deterministic simnet.  This
module answers the operational question the realnet backend exists
for: does the *same deployment code* — peers, ordering, gossip,
clients, fault injection — stay healthy under sustained traffic for a
wall-clock budget, on real sockets, with every invariant the chaos
layer knows about checked at the end?

A soak run (:func:`run_soak`):

1. builds one shared transport (``simnet`` or ``realnet``) and ``N``
   independent game sessions on it, each a full
   :class:`~repro.blockchain.network.BlockchainNetwork` with its own
   orderer, peers, and :class:`~repro.chaos.workload.CounterWorkload`;
2. arms per-session :class:`~repro.chaos.injector.FaultInjector`\\ s
   (drop/delay windows, optional crash/restart churn) behind one
   composite ``fault_injector`` hook;
3. attaches a per-session :class:`~repro.chaos.invariants
   .InvariantMonitor` with :class:`~repro.chaos.invariants
   .CounterConservation`;
4. runs for the requested budget, sampling throughput along the way
   (and, on realnet, serving live ``/metrics`` over HTTP and scraping
   it mid-run);
5. lifts all faults, lets the network settle, submits liveness probes,
   and runs the end-of-run convergence checks.

The returned record is JSON-ready and tagged with the backend, so the
perf baseline checker can refuse cross-backend comparisons.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..blockchain.config import FabricConfig
from ..blockchain.identity import CertificateAuthority
from ..blockchain.network import BlockchainNetwork
from ..chaos.faults import FaultSchedule
from ..chaos.injector import FaultInjector
from ..chaos.invariants import CounterConservation, InvariantMonitor
from ..chaos.workload import CounterWorkload
from ..realnet import make_network
from ..simnet.clock import SimulationError
from ..telemetry import (
    Telemetry,
    fig2_latency_bins,
    prometheus_text,
    stage_summary,
)

__all__ = ["SoakConfig", "SoakSession", "run_soak", "write_record"]

SCHEMA = "repro.soak/1"


@dataclass
class SoakConfig:
    """Knobs of one soak run.  Times are seconds of *clock* time —
    wall seconds on realnet, simulated seconds on simnet (where the
    same run completes as fast as the host can turn the crank)."""

    backend: str = "simnet"
    sessions: int = 2
    peers: int = 8
    wall_s: float = 60.0
    seed: int = 0
    #: Workload tick interval per session (one counter update per tick).
    tick_ms: float = 40.0
    #: Drop rate injected over the middle of the run (0 = no window).
    drop: float = 0.0
    #: Extra per-message delay injected over the middle of the run.
    delay_ms: float = 0.0
    #: Crash/restart one non-anchor peer per session per ~minute.
    churn: bool = False
    #: Closed-loop backpressure: a session's tick is shed (not
    #: submitted) while this many of its updates are unresolved.  Keeps
    #: an over-capacity host degrading in throughput instead of
    #: unbounded queueing delay; on simnet commit latency is a few
    #: sim-ms, so the cap never engages.
    max_inflight: int = 32
    #: Budget for the post-workload settle + convergence phases.
    settle_s: float = 15.0
    #: Throughput sample interval.
    sample_s: float = 5.0
    #: realnet only: bind the live ``/metrics`` endpoint here (0 = any).
    metrics_port: int = 0

    def __post_init__(self) -> None:
        if self.backend not in ("simnet", "realnet"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.sessions < 1 or self.peers < 1:
            raise ValueError("need at least one session and one peer")
        if self.wall_s <= 0:
            raise ValueError("wall_s must be positive")


@dataclass
class SoakSession:
    """One game session riding the shared transport."""

    chain: BlockchainNetwork
    workload: CounterWorkload
    monitor: InvariantMonitor
    injector: Optional[FaultInjector]
    telemetry: Telemetry
    faults: List[Any] = field(default_factory=list)


def _build_schedule(config: SoakConfig, chain: BlockchainNetwork, index: int) -> FaultSchedule:
    """Per-session fault timeline: drop/delay windows over the middle
    half of the run, plus optional crash/restart churn rounds."""
    duration_ms = config.wall_s * 1000.0
    names = [p.name for p in chain.peers]
    schedule = FaultSchedule(seed=config.seed + index)
    window_at = 0.25 * duration_ms
    window_len = 0.5 * duration_ms
    if config.drop > 0.0:
        schedule.drop(window_at, names, window_len, config.drop)
    if config.delay_ms > 0.0:
        schedule.delay(window_at, names, window_len, rate=0.5, extra_ms=config.delay_ms)
    if config.churn:
        # Workload anchors are peers[0] and peers[n//2]; churn only the
        # others so client polling always has a live anchor.
        anchors = {0, len(names) // 2}
        candidates = [n for i, n in enumerate(names) if i not in anchors]
        if candidates:
            rounds = max(1, int(duration_ms // 60_000.0))
            for r in range(rounds):
                victim = candidates[(index + r) % len(candidates)]
                start = (r + 0.35) / rounds * duration_ms
                stop = min(start + 0.25 / rounds * duration_ms, duration_ms * 0.9)
                schedule.crash(start, victim).restart(stop, victim)
    return schedule


def _composite_filter(filters):
    """Chain per-session fault filters behind the transport's single
    ``fault_injector`` hook.  Each filter maps a delivery time to a
    list of times (none = drop); times flow through every filter, so
    disjoint sessions compose without interfering."""

    def apply(msg, deliver_at):
        times = [deliver_at]
        for fn in filters:
            nxt: List[float] = []
            for t in times:
                nxt.extend(fn(msg, t))
            if not nxt:
                return []
            times = nxt
        return times

    return apply


def _settle(net, backend: str, budget_ms: float, record: Dict[str, Any]) -> None:
    """Drain in-flight work; on realnet bounded by wall time."""
    try:
        if backend == "realnet":
            net.run_until_idle(max_wall_ms=budget_ms)
        else:
            net.run_until_idle()
    except SimulationError as exc:
        record["settle_timeouts"].append(str(exc))


def run_soak(
    config: SoakConfig,
    metrics_snapshot_path: Optional[str] = None,
    progress=None,
) -> Dict[str, Any]:
    """Run one soak and return its JSON-ready record.

    ``metrics_snapshot_path``: write a Prometheus text snapshot there —
    on realnet the snapshot is *scraped live over HTTP mid-run* (what a
    real scraper would have seen), on simnet it is exported at the end.
    ``progress``: optional ``print``-like callable for CLI narration.
    """
    say = progress if progress is not None else (lambda msg: None)
    started_wall = time.time()
    duration_ms = config.wall_s * 1000.0
    backend = config.backend

    say(f"building {config.sessions} session(s) x {config.peers} peers on {backend}")
    net = make_network(backend, seed=config.seed)
    if backend == "realnet":
        net.start()
    ca = CertificateAuthority(seed=config.seed)
    fabric = FabricConfig(backend=backend)

    sessions: List[SoakSession] = []
    for index in range(config.sessions):
        chain = BlockchainNetwork(
            config.peers,
            config=fabric,
            seed=config.seed + index,
            net=net,
            ca=ca,
            name_prefix=f"s{index}.",
        )
        telemetry = Telemetry().instrument_chain(chain)
        workload = CounterWorkload(
            chain,
            duration_ms=duration_ms,
            interval_ms=config.tick_ms,
            seed=config.seed + index,
            poll_timeout_ms=min(20_000.0, config.settle_s * 1000.0),
            max_inflight=config.max_inflight,
        ).install()
        monitor = InvariantMonitor(
            chain, asset_invariants=(CounterConservation(),)
        ).attach()
        schedule = _build_schedule(config, chain, index)
        injector: Optional[FaultInjector] = None
        if schedule.events:
            faults: List[Any] = []
            injector = FaultInjector(
                chain, schedule,
                on_fault=lambda t, kind, targets, _f=faults: _f.append(
                    {"t_ms": t, "kind": kind, "targets": list(targets)}
                ),
            )
            sessions.append(SoakSession(chain, workload, monitor, injector, telemetry, faults))
        else:
            sessions.append(SoakSession(chain, workload, monitor, None, telemetry))

    # install() clobbers net.fault_injector per session; compose after.
    injectors = [s.injector for s in sessions if s.injector is not None]
    for injector in injectors:
        injector.install()
    if injectors:
        net.fault_injector = _composite_filter([inj._filter for inj in injectors])

    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "backend": backend,
        "config": asdict(config),
        "samples": [],
        "settle_timeouts": [],
        "faults": [],
        "violations": [],
    }

    # Throughput sampler: absolute tick times, shared scheduler.
    def sample() -> None:
        record["samples"].append({
            "t_ms": round(net.scheduler.now, 1),
            "submitted": sum(s.workload.submitted for s in sessions),
            "resolved": sum(sum(s.workload.codes.values()) for s in sessions),
            "committed_heights": [s.chain.peers[0].committed_height for s in sessions],
        })

    t = config.sample_s * 1000.0
    while t < duration_ms:
        net.scheduler.call_at(t, sample)
        t += config.sample_s * 1000.0

    # Live /metrics endpoint + mid-run self-scrape (realnet only).
    metrics_server = None
    scrape_holder: Dict[str, str] = {}
    if backend == "realnet":
        from ..realnet.metrics_http import MetricsServer, scrape

        metrics_server = MetricsServer(
            sessions[0].telemetry, net.scheduler, port=config.metrics_port
        ).start()
        record["metrics_url"] = metrics_server.url

        def store_scrape(task) -> None:
            try:
                scrape_holder["body"] = task.result()
            except Exception:
                pass  # a failed scrape falls back to end-of-run export

        def live_scrape() -> None:
            task = net.scheduler.loop.create_task(
                scrape(metrics_server.host, metrics_server.port)
            )
            task.add_done_callback(store_scrape)

        net.scheduler.call_at(0.6 * duration_ms, live_scrape)
        # Construction burned wall time; restart the clock so tick 1 of
        # the schedules above is "now", not a stale burst.
        net.scheduler.rebase()

    say(f"running workload for {config.wall_s:.0f}s ({backend} time)")
    net.run(until=duration_ms)

    say("lifting faults and settling")
    for injector in injectors:
        injector.lift_all()
    _settle(net, backend, config.settle_s * 1000.0, record)

    say("submitting liveness probes")
    for session in sessions:
        session.workload.submit_probes()
    _settle(net, backend, config.settle_s * 1000.0, record)

    say("running invariant checks")
    violations: List[str] = []
    for session in sessions:
        session.monitor.check_convergence()
        violations.extend(v.describe() for v in session.monitor.violations)

    per_session: List[Dict[str, Any]] = []
    for session in sessions:
        per_session.append({
            "name_prefix": session.chain.name_prefix,
            "submitted": session.workload.submitted,
            "shed": session.workload.shed,
            "codes": session.workload.summary(),
            "probe_codes": list(session.workload.probe_codes),
            "committed_height": session.chain.peers[0].committed_height,
            "commits_checked": session.monitor.commits_checked,
            "counters": session.workload.expected_totals(),
            "faults_applied": (
                session.injector.faults_applied if session.injector else 0
            ),
        })
        record["faults"].extend(session.faults)

    probes_expected = 3 * len(sessions)
    probe_codes = [c for s in sessions for c in s.workload.probe_codes]
    probes_valid = sum(1 for c in probe_codes if c == "VALID")
    if probes_valid < probes_expected:
        violations.append(
            f"liveness: {probes_valid}/{probes_expected} probes committed VALID "
            f"(codes: {probe_codes})"
        )
    if record["settle_timeouts"]:
        violations.append(
            "settle: network failed to quiesce: "
            + "; ".join(record["settle_timeouts"])
        )

    codes: Counter = Counter()
    for session in sessions:
        codes.update(session.workload.codes)

    record.update({
        "wall_elapsed_s": round(time.time() - started_wall, 3),
        "clock_ms": round(net.scheduler.now, 1),
        "submitted": sum(s.workload.submitted for s in sessions),
        "shed": sum(s.workload.shed for s in sessions),
        "codes": dict(sorted(codes.items())),
        "per_session": per_session,
        "net": net.stats.as_dict(),
        "violations": violations,
        "ok": not violations,
        "stage_summary": stage_summary(sessions[0].telemetry),
        "fig2": fig2_latency_bins(sessions[0].telemetry),
    })
    if backend == "realnet":
        record["transport"] = {
            "connects": net.connects,
            "frame_errors": net.frame_errors,
        }

    if metrics_snapshot_path is not None:
        if backend == "realnet" and scrape_holder.get("body"):
            snapshot = scrape_holder["body"]
            record["metrics_snapshot"] = "live-scrape"
        else:
            snapshot = prometheus_text(sessions[0].telemetry)
            record["metrics_snapshot"] = "export"
        with open(metrics_snapshot_path, "w") as fh:
            fh.write(snapshot)

    if metrics_server is not None:
        metrics_server.stop()
    if backend == "realnet":
        net.close()
    return record


def write_record(record: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
