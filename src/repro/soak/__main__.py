"""CLI for the soak harness: ``python -m repro.soak``.

Examples::

    # 60 s of real-socket traffic, 2 sessions x 8 peers, with faults:
    python -m repro.soak --backend realnet --sessions 2 --peers 8 \\
        --wall-s 60 --drop 0.05 --delay-ms 20 \\
        --record soak.json --metrics-snapshot metrics.prom

    # The identical deployment path on the deterministic backend:
    python -m repro.soak --backend simnet --sessions 2 --peers 8 --wall-s 60

Exit status: 0 when every invariant held, 1 on violations.
"""

from __future__ import annotations

import argparse
import sys

from . import SoakConfig, run_soak, write_record


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.soak",
        description="sustained multi-session soak over simnet or realnet",
    )
    parser.add_argument(
        "--backend", choices=("simnet", "realnet"), default="simnet",
        help="transport backend (default: simnet)",
    )
    parser.add_argument("--sessions", type=int, default=2, help="game sessions")
    parser.add_argument("--peers", type=int, default=8, help="peers per session")
    parser.add_argument(
        "--wall-s", type=float, default=60.0,
        help="workload duration in clock seconds (wall on realnet)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--tick-ms", type=float, default=40.0,
        help="workload tick interval per session",
    )
    parser.add_argument(
        "--drop", type=float, default=0.0,
        help="message drop rate injected over the middle of the run",
    )
    parser.add_argument(
        "--delay-ms", type=float, default=0.0,
        help="extra delay injected on half the messages mid-run",
    )
    parser.add_argument(
        "--churn", action="store_true",
        help="crash/restart one non-anchor peer per session per ~minute",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=32,
        help="per-session backpressure cap: shed ticks past this many "
             "unresolved updates (keeps over-capacity hosts latency-bounded)",
    )
    parser.add_argument(
        "--settle-s", type=float, default=15.0,
        help="budget for each post-workload settle phase",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=0,
        help="realnet: port for the live /metrics endpoint (0 = any free)",
    )
    parser.add_argument(
        "--record", metavar="PATH", help="write the JSON soak record here"
    )
    parser.add_argument(
        "--metrics-snapshot", metavar="PATH",
        help="write a Prometheus text snapshot here (live-scraped on realnet)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress progress output"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = SoakConfig(
        backend=args.backend,
        sessions=args.sessions,
        peers=args.peers,
        wall_s=args.wall_s,
        seed=args.seed,
        tick_ms=args.tick_ms,
        drop=args.drop,
        delay_ms=args.delay_ms,
        churn=args.churn,
        max_inflight=args.max_inflight,
        settle_s=args.settle_s,
        metrics_port=args.metrics_port,
    )
    say = (lambda msg: None) if args.quiet else (lambda msg: print(f"[soak] {msg}"))
    record = run_soak(
        config, metrics_snapshot_path=args.metrics_snapshot, progress=say
    )

    print(
        f"[soak] {record['backend']}: {record['submitted']} submitted "
        f"({record['shed']} shed), codes {record['codes']}, "
        f"{record['wall_elapsed_s']:.1f}s wall"
    )
    if "metrics_url" in record:
        print(f"[soak] metrics were live at {record['metrics_url']}")
    if args.record:
        write_record(record, args.record)
        print(f"[soak] record -> {args.record}")
    if args.metrics_snapshot:
        print(f"[soak] metrics snapshot -> {args.metrics_snapshot}")
    if record["violations"]:
        print(f"[soak] {len(record['violations'])} violation(s):", file=sys.stderr)
        for violation in record["violations"]:
            print(f"[soak]   {violation}", file=sys.stderr)
        return 1
    print("[soak] all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
