"""Robust distributed random-number generation (commit-reveal).

The paper uses "a robust, off-chain distributed random number generator
(using [Awerbuch et al.])" for two things: generating the anonymous
player-identity mapping during network generation (§4.2.2) and
simulating unbiased dice for Monopoly (§7.3 ii).

The protocol here is the classic two-phase commit-reveal: every
participant commits to ``H(salt ‖ value)``, then reveals; the output is
the XOR of all *verified* contributions, so it is uniform as long as a
single participant is honest.  Withholding or mis-revealing is detected
and the offender excluded — the robustness property the paper needs in
an adversarial P2P setting.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "RngError",
    "Contribution",
    "Participant",
    "CommitRevealRound",
    "distributed_random",
    "DistributedDice",
]

_VALUE_BITS = 256


class RngError(RuntimeError):
    """Protocol violation in the distributed RNG."""


def _commitment(salt: bytes, value: int) -> str:
    return hashlib.sha256(salt + value.to_bytes(_VALUE_BITS // 8, "big")).hexdigest()


@dataclass
class Contribution:
    """One participant's (commit, reveal) pair as seen by the round."""

    name: str
    commitment: str
    salt: Optional[bytes] = None
    value: Optional[int] = None

    @property
    def revealed(self) -> bool:
        return self.value is not None

    def verify(self) -> bool:
        if not self.revealed or self.salt is None:
            return False
        return _commitment(self.salt, self.value) == self.commitment


class Participant:
    """An honest participant; deterministic from its seed.

    ``bias_value`` produces a *dishonest* participant for tests: it
    reveals a different value than committed (caught by verification).
    """

    def __init__(self, name: str, seed=0, bias_value: Optional[int] = None):
        self.name = name
        self._rng = random.Random(f"rng:{name}:{seed}")
        self._salt = self._rng.getrandbits(128).to_bytes(16, "big")
        self._value = self._rng.getrandbits(_VALUE_BITS)
        self._bias_value = bias_value

    def commit(self) -> Contribution:
        return Contribution(name=self.name, commitment=_commitment(self._salt, self._value))

    def reveal(self, contribution: Contribution) -> None:
        contribution.salt = self._salt
        contribution.value = (
            self._bias_value if self._bias_value is not None else self._value
        )


class CommitRevealRound:
    """One round: collect commits, then reveals, then combine.

    The phases are explicit so tests (and the message-driven shim) can
    interleave adversarial behaviour between them.
    """

    def __init__(self) -> None:
        self._contributions: Dict[str, Contribution] = {}
        self._commit_phase_closed = False
        self.cheaters: List[str] = []

    def submit_commit(self, contribution: Contribution) -> None:
        if self._commit_phase_closed:
            raise RngError("commit phase already closed")
        if contribution.name in self._contributions:
            raise RngError(f"duplicate commitment from {contribution.name}")
        self._contributions[contribution.name] = contribution

    def close_commits(self) -> None:
        if len(self._contributions) < 1:
            raise RngError("no commitments submitted")
        self._commit_phase_closed = True

    def contribution(self, name: str) -> Contribution:
        return self._contributions[name]

    def combine(self, min_honest: int = 1) -> int:
        """XOR of all verified reveals; cheaters and withholders are
        excluded and recorded in :attr:`cheaters`."""
        if not self._commit_phase_closed:
            raise RngError("close the commit phase before combining")
        verified: List[int] = []
        self.cheaters = []
        for name, contribution in sorted(self._contributions.items()):
            if contribution.verify():
                verified.append(contribution.value)
            else:
                self.cheaters.append(name)
        if len(verified) < min_honest:
            raise RngError(
                f"only {len(verified)} verified contributions "
                f"(needed {min_honest})"
            )
        out = 0
        for value in verified:
            out ^= value
        return out


def distributed_random(
    participants: List[Participant], modulus: Optional[int] = None
) -> Tuple[int, List[str]]:
    """Run a full commit-reveal round among ``participants``.

    Returns ``(value, cheaters)``; ``value`` is reduced mod ``modulus``
    when given.
    """
    if not participants:
        raise RngError("need at least one participant")
    round_ = CommitRevealRound()
    contributions = {}
    for participant in participants:
        contribution = participant.commit()
        round_.submit_commit(contribution)
        contributions[participant.name] = contribution
    round_.close_commits()
    for participant in participants:
        participant.reveal(contributions[participant.name])
    value = round_.combine()
    if modulus is not None:
        value %= modulus
    return value, round_.cheaters


class DistributedDice:
    """Unbiased dice built on commit-reveal rounds (Monopoly, §7.3 ii).

    Each roll runs a fresh round (fresh salts/values derived from the
    roll counter) so outcomes are independent and every roll is
    verifiable by all players.
    """

    def __init__(self, player_names: List[str], seed=0):
        if not player_names:
            raise RngError("dice need at least one player")
        self._names = list(player_names)
        self._seed = seed
        self._roll_count = 0
        self.last_cheaters: List[str] = []

    def roll(self) -> Tuple[int, int]:
        self._roll_count += 1
        participants = [
            Participant(name, seed=f"{self._seed}:roll{self._roll_count}")
            for name in self._names
        ]
        value, cheaters = distributed_random(participants, modulus=36)
        self.last_cheaters = cheaters
        return (value // 6 + 1, value % 6 + 1)
