"""Robust distributed randomness (commit-reveal), per Awerbuch et al."""

from .commit_reveal import (
    CommitRevealRound,
    Contribution,
    DistributedDice,
    Participant,
    RngError,
    distributed_random,
)

__all__ = [
    "CommitRevealRound",
    "Contribution",
    "DistributedDice",
    "Participant",
    "RngError",
    "distributed_random",
]
