"""Fig. 3d — Transaction delays with and without batching across the 10
longest sessions, 32 peers (§7.2.4(1)).

Published shape: with batching at most 62 delayed events (session #9,
the longest at 24 min / ~25K events); without batching delays are 10×
to 1000× higher.  Each session is replayed through the shim's windowed
dispatch model with the 32-peer all-optimisations validation window
measured live (§7.2.4's methodology: "the time window corresponding to
the average validation latency for the setup").
"""

from helpers import validation_window_ms
from repro.analysis import AsciiTable
from repro.core import count_delays
from repro.game import paper_dataset, ten_longest


def run_fig3d():
    window = validation_window_ms(32)
    sessions = ten_longest(paper_dataset())
    rows = []
    for demo in sessions:
        with_batching = count_delays(demo.events, window, batching=True)
        without = count_delays(demo.events, window, batching=False)
        rows.append((demo, with_batching, without))
    return window, rows


def test_fig3d_batching_across_sessions(benchmark):
    window, rows = benchmark.pedantic(run_fig3d, rounds=1, iterations=1)

    table = AsciiTable(
        ["demo", "events", "delays w/o batching", "delays w/ batching",
         "reduction"],
        title=f"Fig. 3d — txn delays across sessions "
              f"(32 peers, window {window:.0f} ms)",
    )
    for demo, with_b, without in rows:
        reduction = without.delayed_events / max(1, with_b.delayed_events)
        table.row(demo.session_id, len(demo), without.delayed_events,
                  with_b.delayed_events, f"{reduction:.0f}x")
    table.print()

    for demo, with_b, without in rows:
        # Batching reduces delays by orders of magnitude (10x-1000x).
        assert without.delayed_events >= 10 * max(1, with_b.delayed_events), (
            demo.session_id
        )
        # With batching, delays stay in the tens, not thousands
        # (paper max: 62 for session #9).
        assert with_b.delayed_events < 200, demo.session_id
        # Without batching, most location updates miss their window.
        assert without.delayed_events > 1000, demo.session_id
