"""DDoS robustness (§7.2.4(3)) — and the C/S contrast (§2.2, §5).

"We observe the effects on event validation throughput for 8 and 16
peers with number of faulty nodes at 12.5%, 25% and 37.5%.  We replay
an event trace from Doom session #9 across all peers and note that the
throughput remains the same even in the presence of malicious peers."

The companion experiment the design argument implies: one takedown
target kills the C/S deployment outright.
"""

import pytest

from helpers import all_opts_fabric
from repro.analysis import AsciiTable
from repro.baselines import CSClient, GameServer
from repro.core import GameSession
from repro.game import paper_dataset, ten_longest
from repro.simnet import INTERNET_US, Network, TakedownAttack

FAULT_FRACTIONS = (0.0, 0.125, 0.25, 0.375)
SLICE_MS = 90_000.0  # a 90 s slice of session #9 keeps the bench tractable


def replay_with_faults(demo, n_peers: int, fraction: float) -> float:
    """Replay the trace with a fraction of peers down; returns events/s."""
    session = GameSession(
        n_peers=n_peers, profile=INTERNET_US, fabric_config=all_opts_fabric(),
        game_map=demo.game_map, player_names=[demo.player], n_players=1, seed=4,
    )
    session.setup()
    anchor = session.shims[0].anchor_peer.name
    candidates = [p.name for p in session.chain.peers if p.name != anchor]
    victims = candidates[: int(n_peers * fraction)]
    if victims:
        TakedownAttack(victims).apply(session.chain.net)
    session.play_demo(demo)
    session.run_until_idle()
    stats = session.stats()
    assert stats.events_acked == stats.events_received, "events went unanswered"
    throughput = stats.throughput_events_per_s()
    session.teardown()
    return throughput


def cs_under_takedown(demo) -> float:
    """The C/S control: server taken down mid-replay; returns the
    fraction of events that were ever acknowledged."""
    net = Network(profile=INTERNET_US, seed=5)
    server = net.register(GameServer(game_map=demo.game_map, strict_pickups=True))
    server.add_player(demo.player)
    client = net.register(CSClient("c1", server.region, server))
    half = demo.duration_ms / 2.0
    for event in demo.events:
        net.scheduler.call_at(event.t_ms, client.send_event, event)
    net.scheduler.call_at(half, TakedownAttack([server.name]).apply, net)
    net.run_until_idle()
    return (client.accepted + client.rejected) / len(demo)


def run_experiment():
    demo = ten_longest(paper_dataset())[0].slice(SLICE_MS)
    grid = {}
    for n_peers in (8, 16):
        grid[n_peers] = {
            fraction: replay_with_faults(demo, n_peers, fraction)
            for fraction in FAULT_FRACTIONS
        }
    cs_answered = cs_under_takedown(demo)
    return demo, grid, cs_answered


def test_ddos_robustness(benchmark):
    demo, grid, cs_answered = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    table = AsciiTable(
        ["peers"] + [f"{f:.1%} faulty" for f in FAULT_FRACTIONS],
        title=f"Event-validation throughput (events/s), "
              f"{len(demo)}-event slice of session {demo.session_id}",
    )
    for n_peers, row in grid.items():
        table.row(n_peers, *[f"{row[f]:.1f}" for f in FAULT_FRACTIONS])
    table.print()
    print(f"C/S control: server taken down mid-replay -> only "
          f"{cs_answered:.0%} of events ever acknowledged")

    # Published result: throughput unchanged under faulty minorities.
    for n_peers, row in grid.items():
        baseline = row[0.0]
        for fraction in FAULT_FRACTIONS[1:]:
            assert row[fraction] == pytest.approx(baseline, rel=0.05), (
                n_peers, fraction
            )
    # The C/S deployment lost roughly the second half of the session.
    assert cs_answered < 0.75
