"""Shared machinery for the benchmark harness.

The central piece is the §7.2.3 event generator: "We generate synthetic
events … and drive the shim at the highest successful event input rate
possible, i.e., the shim sends events to the contract immediately after
receiving validation notification for the previous event" — a closed
loop per asset type, five asset types, implemented by
:class:`ClosedLoopDriver` on top of the real shim.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.blockchain import FabricConfig
from repro.core import GameSession, ShimConfig
from repro.game import DoomMap, EventType, GameEvent
from repro.simnet import INTERNET_US, LatencyProfile

#: The three shim/platform configurations of Fig. 3c.
def fig3c_configs() -> Dict[str, Tuple[FabricConfig, ShimConfig]]:
    return {
        "baseline (5 assets)": (
            FabricConfig(max_block_txs=1),
            ShimConfig(multithreaded=False, batching=False),
        ),
        "w/ multi-threading": (
            FabricConfig(max_block_txs=1),
            ShimConfig(multithreaded=True, batching=False),
        ),
        "w/ multi-threading + blocksize": (
            FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True),
            ShimConfig(multithreaded=True, batching=False),
        ),
    }


#: All-optimisations platform configuration (used by the batching and
#: scalability experiments, §7.2.4: "we enabled all optimizations and
#: set the number of threads per peer and the block size to 5").
def all_opts_fabric() -> FabricConfig:
    return FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True)


class ClosedLoopDriver:
    """Drives five per-asset closed loops through one shim.

    Each lane (location, shoot/ammo, health, invisibility, radiation suit)
    keeps exactly one event outstanding: the next is generated the
    moment the previous one's validation notification arrives.
    """

    LANES = ("location", "ammo", "health", "invis", "radsuit")

    def __init__(self, session: GameSession, events_per_lane: int):
        self.session = session
        self.shim = session.shims[0]
        self.events_per_lane = events_per_lane
        self.sent: Dict[str, int] = {lane: 0 for lane in self.LANES}
        self.latencies: Dict[str, List[float]] = {lane: [] for lane in self.LANES}
        self.rejorted: List[str] = []
        self._seq = 0
        self._lane_of_seq: Dict[int, str] = {}
        spawn = session.network.game_map.spawn_points[0]
        self._x, self._y = spawn
        self._weapon_toggle = False
        self.shim.on_ack = self._on_ack

    # ------------------------------------------------------------------

    def start(self) -> None:
        for lane in self.LANES:
            self._send(lane)

    def done(self) -> bool:
        return all(self.sent[lane] >= self.events_per_lane for lane in self.LANES)

    def all_latencies(self) -> List[float]:
        return [l for lane in self.LANES for l in self.latencies[lane]]

    # ------------------------------------------------------------------

    def _send(self, lane: str) -> None:
        if self.sent[lane] >= self.events_per_lane:
            return
        self.sent[lane] += 1
        self._seq += 1
        seq = self._seq
        self._lane_of_seq[seq] = lane
        now = self.session.now
        if lane == "location":
            self._x += 1.0
            event = GameEvent(now, self.shim.player, EventType.LOCATION,
                              {"x": self._x, "y": self._y, "t": now}, seq)
        elif lane == "ammo":
            # One clip pickup per ten shots keeps the magazine loaded.
            if self.sent[lane] % 10 == 0:
                event = GameEvent(now, self.shim.player, EventType.PICKUP_CLIP,
                                  {"t": now}, seq)
            else:
                event = GameEvent(now, self.shim.player, EventType.SHOOT,
                                  {"count": 1}, seq)
        elif lane == "health":
            event = GameEvent(now, self.shim.player, EventType.DAMAGE,
                              {"amount": 1, "t": now}, seq)
        elif lane == "invis":
            event = GameEvent(now, self.shim.player, EventType.PICKUP_INVIS,
                              {"t": now}, seq)
        else:  # radsuit
            event = GameEvent(now, self.shim.player, EventType.PICKUP_RADSUIT,
                              {"t": now}, seq)
        self.shim.on_game_event(event)

    def _on_ack(self, event: GameEvent, accepted: bool, code: str, latency: float) -> None:
        lane = self._lane_of_seq.pop(event.seq, None)
        if lane is None:
            return
        self.latencies[lane].append(latency)
        if not accepted:
            self.rejorted.append(code)
        self._send(lane)


def measure_validation_latency(
    n_peers: int,
    fabric: FabricConfig,
    shim_config: ShimConfig,
    events_per_lane: int = 30,
    profile: LatencyProfile = INTERNET_US,
    seed: int = 1,
) -> float:
    """Average per-asset event-validation latency (simulated ms) under
    the §7.2.3 methodology."""
    session = GameSession(
        n_peers=n_peers,
        profile=profile,
        fabric_config=fabric,
        shim_config=shim_config,
        game_map=DoomMap.default_map(),
        n_players=1,
        seed=seed,
    )
    # Synthetic generators claim pickups without item bindings.
    for peer in session.chain.peers:
        peer.contracts["doom"].strict_pickups = False
    session.setup()
    driver = ClosedLoopDriver(session, events_per_lane)
    driver.start()
    session.run_until_idle()
    assert driver.done(), "closed loops did not complete"
    assert not driver.rejorted, f"unexpected rejections: {driver.rejorted[:5]}"
    latencies = driver.all_latencies()
    session.teardown()
    return sum(latencies) / len(latencies)


_WINDOW_CACHE: Dict[Tuple[int, int], float] = {}


def validation_window_ms(n_peers: int, events_per_lane: int = 20, seed: int = 1) -> float:
    """The all-optimisations average validation latency for a peer count
    — the 'time window' the batching analyses are measured against."""
    key = (n_peers, events_per_lane)
    if key not in _WINDOW_CACHE:
        _WINDOW_CACHE[key] = measure_validation_latency(
            n_peers,
            all_opts_fabric(),
            ShimConfig(multithreaded=True, batching=False),
            events_per_lane=events_per_lane,
            seed=seed,
        )
    return _WINDOW_CACHE[key]
