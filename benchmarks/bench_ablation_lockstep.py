"""Ablation — lockstep P2P versus blockchain consensus (§9.1).

Lockstep (Baughman et al.; NEO/SEA family) is the classic cheat-aware
P2P design the paper positions against: two all-to-all phases per round
(commit, then reveal), advancing at the slowest player's pace, with no
semantic validation of the agreed moves.  This bench compares, per room
size: the lockstep round latency, our event-validation latency, and
what happens to each when one participant becomes unreachable.
"""

from helpers import all_opts_fabric, measure_validation_latency
from repro.analysis import AsciiTable
from repro.baselines import LockstepGame, LockstepPlayer
from repro.core import ShimConfig
from repro.simnet import INTERNET_US, Network, Region, TakedownAttack

ROOM_SIZES = (4, 8, 16, 32)


def lockstep_round_latency(n_players: int, seed: int = 1) -> float:
    net = Network(profile=INTERNET_US, seed=seed)
    regions = (Region.DALLAS, Region.SAN_JOSE, Region.TORONTO)
    players = [
        net.register(LockstepPlayer(f"lp{i}", regions[i % 3]))
        for i in range(n_players)
    ]
    game = LockstepGame(players, rounds=5)
    game.run(net)
    assert game.all_agree()
    return game.avg_round_latency_ms()


def lockstep_rounds_with_one_down(n_players: int) -> int:
    net = Network(profile=INTERNET_US, seed=2)
    regions = (Region.DALLAS, Region.SAN_JOSE, Region.TORONTO)
    players = [
        net.register(LockstepPlayer(f"lp{i}", regions[i % 3]))
        for i in range(n_players)
    ]
    LockstepGame(players, rounds=5)
    TakedownAttack([players[-1].name]).apply(net)
    for player in players:
        player.start_round()
    net.run(until=30_000.0)
    return max(len(p.completed_rounds) for p in players[:-1])


def run_comparison():
    shim_config = ShimConfig(multithreaded=True, batching=False)
    rows = []
    for n in ROOM_SIZES:
        lockstep = lockstep_round_latency(n)
        ours = measure_validation_latency(
            n, all_opts_fabric(), shim_config, events_per_lane=15
        )
        stalled_rounds = lockstep_rounds_with_one_down(n)
        rows.append((n, lockstep, ours, stalled_rounds))
    return rows


def test_ablation_lockstep_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    table = AsciiTable(
        ["room size", "lockstep round (ms)", "our validation (ms)",
         "lockstep rounds w/ 1 peer down"],
        title="Ablation §9.1: lockstep P2P vs blockchain consensus",
    )
    for n, lockstep, ours, stalled in rows:
        table.row(n, f"{lockstep:.0f}", f"{ours:.0f}", stalled)
    table.print()

    for n, lockstep, ours, stalled in rows:
        # Lockstep's fatal liveness property: one unreachable player
        # halts every round for everyone; our consensus outvotes it.
        assert stalled == 0, n
        # Lockstep rounds are cheap (2 WAN phases) at small rooms…
        assert lockstep > 60.0  # ≥ 2 one-way WAN hops
    # …but our per-event validation stays in the same order of
    # magnitude while adding semantic rule enforcement.
    four = rows[0]
    assert four[2] < 4 * four[1]
