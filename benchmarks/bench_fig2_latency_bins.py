"""Fig. 2 — Distribution of servers based on observed latencies (§7.1).

Prints, per title, the fraction of servers in each of the six latency
bins, and checks the published take-away: the majority of servers lie
in the 100-350 ms buckets and few offer <100 ms.
"""

from repro.analysis import AsciiTable
from repro.study import LATENCY_BINS, STUDY_TITLES, SteamStudy


def run_fig2():
    return SteamStudy(seed=2018).figure2()


def test_fig2_server_latency_distribution(benchmark):
    distributions = benchmark.pedantic(run_fig2, rounds=1, iterations=1)

    headers = ["Game"] + [f"{int(lo)}-{int(hi)}ms" for lo, hi in LATENCY_BINS]
    table = AsciiTable(headers, title="Fig. 2 — server share per latency bin")
    for title in STUDY_TITLES:
        bins = distributions[title.name]
        table.row(title.name, *[f"{b:.2f}" for b in bins])
    table.print()

    for title in STUDY_TITLES:
        bins = distributions[title.name]
        assert abs(sum(bins) - 1.0) < 1e-9
        # Majority of servers in the 100-350 ms buckets…
        assert sum(bins[2:5]) > 0.5, title.name
        # …and not enough servers with <100 ms latency.
        assert sum(bins[:2]) < 0.2, title.name
