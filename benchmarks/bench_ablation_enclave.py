"""Ablation — secure-enclave execution (§7.2.3 "Validity of results").

The paper argues that running the contract inside SGX enclaves — which
its own evaluation could not do — adds 10-20% processing overhead plus
<1 ms of AES work per event, keeping validation "well within the
requirements for online gaming".  This bench measures exactly that:
the full validation pipeline with and without the enclave cost model,
at the paper's key peer counts.
"""


from helpers import all_opts_fabric, measure_validation_latency
from repro.analysis import AsciiTable
from repro.core import ShimConfig
from repro.enclave import CRYPTO_MS_PER_EVENT, with_enclave

PEER_COUNTS = (4, 16, 32)


def run_sweep():
    # Poll continuously so the client tick does not quantise away
    # the few-ms enclave cost.
    shim_config = ShimConfig(multithreaded=True, batching=False,
                             poll_interval_ms=1.0)
    plain_cfg = all_opts_fabric()
    enclave_cfg = with_enclave(plain_cfg)  # 15% + 1 ms AES
    results = {}
    for n in PEER_COUNTS:
        plain = measure_validation_latency(n, plain_cfg, shim_config,
                                           events_per_lane=20)
        enclaved = measure_validation_latency(n, enclave_cfg, shim_config,
                                              events_per_lane=20)
        results[n] = (plain, enclaved)
    return results


def test_ablation_enclave_overhead(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = AsciiTable(
        ["peers", "plain (ms)", "enclaved (ms)", "overhead"],
        title="Ablation: secure-enclave execution "
              "(15% compute + 1 ms AES per event)",
    )
    for n, (plain, enclaved) in results.items():
        table.row(n, f"{plain:.0f}", f"{enclaved:.0f}",
                  f"{(enclaved / plain - 1.0):+.1%}")
    table.print()

    for n, (plain, enclaved) in results.items():
        # Enclaves cost something but stay inside the paper's envelope
        # (10-20% + ~1 ms crypto, amortised over shared pipeline time).
        assert enclaved >= plain
        assert enclaved <= plain * 1.25 + 5 * CRYPTO_MS_PER_EVENT, n
    # The headline survives enclave deployment: 32 peers stay real-time.
    assert results[32][1] < 185.0
