"""Table 2 — Study of latency, tickrate and player participation in FPS
games (§7.1).

Regenerates the ten-title table through the paper's methodology over
the synthetic Steam ecosystem and prints measured vs published rows.
"""

import pytest

from repro.analysis import AsciiTable
from repro.study import SteamStudy

#: Table 2 as published (players avg/max, latency ms, tickrate).
PAPER_ROWS = {
    "Counter-Strike 1.6": (25.49, 32, 241, 30),
    "Counter-Strike: GO": (18.93, 63, 240, 64),
    "Counter-Strike: Source": (14.84, 64, 234, 66),
    "Day of Defeat": (4.59, 30, 245, 30),
    "Double Action: Boogaloo": (0.42, 17, 288, 30),
    "Half-Life": (1.75, 31, 258, 60),
    "Half-Life 2: Deathmatch": (0.99, 64, 244, 30),
    "Left 4 Dead 2": (2.38, 24, 272, 30),
    "Team Fortress Classic": (0.41, 15, 253, 30),
    "Team Fortress 2": (5.63, 32, 270, 30),
}


def run_study():
    return SteamStudy(seed=2018).table2(sessions=5)


def test_table2_steam_study(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)

    table = AsciiTable(
        ["Game", "Avg players", "Max", "Avg latency (ms)", "Tickrate",
         "paper: avg/max/lat/tick"],
        title="Table 2 — study of latency, tickrate and player participation",
    )
    for row in rows:
        p_avg, p_max, p_lat, p_tick = PAPER_ROWS[row.game]
        table.row(
            row.game, f"{row.avg_players:.2f}", row.max_players,
            f"{row.avg_latency_ms:.0f}", row.tickrate,
            f"{p_avg}/{p_max}/{p_lat}/{p_tick}",
        )
    table.print()

    # Shape checks (the paper's four §7.1 take-aways).
    assert min(r.avg_latency_ms for r in rows) >= 225.0
    assert sum(1 for r in rows if r.tickrate > 30) == 3
    assert sum(1 for r in rows if r.max_players > 32) == 3
    for row in rows:
        p_avg, p_max, p_lat, p_tick = PAPER_ROWS[row.game]
        assert row.tickrate == p_tick
        assert row.max_players == p_max
        assert row.avg_latency_ms == pytest.approx(p_lat, rel=0.10)
        assert row.avg_players == pytest.approx(p_avg, rel=0.45, abs=1.0)
