"""Fig. 3c — Effect of block size and multi-threading on average event
validation latency vs peer count (§7.2.3).

The paper's methodology: five per-asset closed loops drive the shim at
the highest successful input rate; the experiment is repeated across
peer counts for (i) the single-threaded baseline, (ii) the
multi-threaded shim, (iii) multi-threading + block size 5 with mutually
exclusive blocks.

Published anchors: ~104/247/490 ms (multi-threading) and ~66/147/415 ms
(+ block size) at 16/32/64 peers; "<150 ms for 32 peers" is the paper's
headline.  See EXPERIMENTS.md for measured-vs-paper discussion.
"""

import pytest

from helpers import fig3c_configs, measure_validation_latency
from repro.analysis import AsciiTable

PEER_COUNTS = (1, 2, 4, 8, 16, 32, 64)

PAPER_ANCHORS = {
    "w/ multi-threading": {16: 104.0, 32: 247.0, 64: 490.0},
    "w/ multi-threading + blocksize": {16: 66.0, 32: 147.0, 64: 415.0},
}


def run_sweep():
    results = {}
    for name, (fabric, shim_config) in fig3c_configs().items():
        results[name] = {
            n: measure_validation_latency(
                n, fabric, shim_config, events_per_lane=20
            )
            for n in PEER_COUNTS
        }
    return results


def test_fig3c_validation_latency(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = AsciiTable(
        ["peers"] + list(results) + ["paper MT", "paper MT+BS"],
        title="Fig. 3c — avg event validation latency (simulated ms)",
    )
    for n in PEER_COUNTS:
        table.row(
            n,
            *[f"{results[name][n]:.0f}" for name in results],
            PAPER_ANCHORS["w/ multi-threading"].get(n, "-"),
            PAPER_ANCHORS["w/ multi-threading + blocksize"].get(n, "-"),
        )
    table.print()

    base = results["baseline (5 assets)"]
    mt = results["w/ multi-threading"]
    bs = results["w/ multi-threading + blocksize"]

    # Shape 1: optimisation ordering at every scaling point.
    for n in (8, 16, 32, 64):
        assert bs[n] < mt[n] < base[n], f"ordering broken at {n} peers"
    # Shape 2: latency grows with peer count.
    assert mt[64] > mt[32] > mt[16] > mt[4]
    assert bs[64] > bs[16]
    # Shape 3: the headline — real-time cheat prevention at 32 peers.
    assert bs[32] < 150.0
    # Shape 4: 64 peers blow past the real-time envelope.
    assert bs[64] > 150.0 and mt[64] > 400.0
    # Rough factors against the published anchors (32-peer points).
    assert mt[32] == pytest.approx(247.0, rel=0.25)
    assert bs[32] == pytest.approx(147.0, rel=0.25)
