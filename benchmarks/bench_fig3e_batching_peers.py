"""Fig. 3e — Transaction delays across peer configurations for session
#9 (§7.2.4(1)).

Published shape: with batching, none of the smaller setups report any
delays and only the 32-peer case shows a small count (62); without
batching, delays are huge from 8 peers up.
"""

from helpers import validation_window_ms
from repro.analysis import AsciiTable
from repro.core import count_delays
from repro.game import paper_dataset, ten_longest

PEER_COUNTS = (1, 2, 4, 8, 16, 32)


def run_fig3e():
    session9 = ten_longest(paper_dataset())[0]
    rows = []
    for n in PEER_COUNTS:
        window = validation_window_ms(n)
        with_b = count_delays(session9.events, window, batching=True)
        without = count_delays(session9.events, window, batching=False)
        rows.append((n, window, with_b, without))
    return session9, rows


def test_fig3e_batching_across_peer_configs(benchmark):
    session9, rows = benchmark.pedantic(run_fig3e, rounds=1, iterations=1)

    table = AsciiTable(
        ["peers", "window (ms)", "delays w/o batching", "delays w/ batching"],
        title=f"Fig. 3e — txn delays across peer configs, session "
              f"{session9.session_id} ({len(session9)} events)",
    )
    for n, window, with_b, without in rows:
        table.row(n, f"{window:.0f}", without.delayed_events,
                  with_b.delayed_events)
    table.print()

    by_peers = {n: (with_b, without) for n, _, with_b, without in rows}
    # Delays grow with the peer count (the window widens).
    delays_without = [without.delayed_events for _, _, _, without in rows]
    assert delays_without == sorted(delays_without)
    # With batching the counts stay tiny even at 32 peers…
    assert by_peers[32][0].delayed_events < 200
    # …while without batching 8+ peer setups suffer huge delays.
    for n in (8, 16, 32):
        assert by_peers[n][1].delayed_events > 1000, n
