"""Fig. 3f — Throughput with all optimisations, with and without event
batching, across peer configurations for session #9 (§7.2.4(1)).

Published shape: the raw 32-peer pipeline sustains only ~7 transactions
per second, yet batching absorbs the session's full 35 events/s client
tickrate; for 1-8 peers batching is not needed.  Also reproduces the
companion statistics: the average batch size (paper: ~14 at 32 peers)
and the location-update share (~99.3%).
"""

from helpers import validation_window_ms
from repro.analysis import AsciiTable
from repro.core import count_delays
from repro.game import Category, paper_dataset, ten_longest

PEER_COUNTS = (1, 2, 4, 8, 16, 32)


def run_fig3f():
    session9 = ten_longest(paper_dataset())[0]
    rows = []
    for n in PEER_COUNTS:
        window = validation_window_ms(n)
        with_b = count_delays(session9.events, window, batching=True)
        without = count_delays(session9.events, window, batching=False)
        rows.append((n, window, with_b, without))
    return session9, rows


def test_fig3f_throughput(benchmark):
    session9, rows = benchmark.pedantic(run_fig3f, rounds=1, iterations=1)

    # The peak demand the game generates (events/s while active).
    peak_rate = session9.max_frequency(Category.LOCATION)
    table = AsciiTable(
        ["peers", "tx/s w/o batching", "events/s w/o batching",
         "tx/s w/ batching", "events/s w/ batching", "avg batch"],
        title=f"Fig. 3f — throughput, session {session9.session_id} "
              f"(client tickrate {session9.tickrate})",
    )
    for n, window, with_b, without in rows:
        table.row(
            n,
            f"{without.throughput_tx_per_s:.1f}",
            f"{without.throughput_events_per_s:.1f}",
            f"{with_b.throughput_tx_per_s:.1f}",
            f"{with_b.throughput_events_per_s:.1f}",
            f"{with_b.avg_batch_size:.1f}",
        )
    table.print()
    loc_share = session9.category_share(Category.LOCATION)
    print(f"location updates: {loc_share:.1%} of all events "
          f"(paper: ~99.3%); peak demand {peak_rate} events/s")

    by_peers = {n: (window, with_b, without)
                for n, window, with_b, without in rows}

    # 32 peers: the raw pipeline is ~1/window tx/s (paper: ~7 tx/s)…
    window32, with32, without32 = by_peers[32]
    assert 4.0 <= without32.throughput_tx_per_s <= 12.0
    # …but batching lets the game absorb its event stream: every event
    # of the session is validated with only a bounded backlog.
    assert with32.throughput_events_per_s >= 0.9 * without32.throughput_events_per_s
    assert with32.delayed_events < 200
    # The batches that make it possible are large: about one validation
    # window's worth of location updates per batch (35/s x 143 ms ≈ 5;
    # the paper reports ~14 — see EXPERIMENTS.md).
    assert with32.avg_batch_size >= 3.0
    assert with32.max_batch_size >= 5
    # For small rooms the raw pipeline already keeps up: batches stay
    # small because events rarely queue.
    _, with1, _ = by_peers[1]
    assert with1.avg_batch_size <= 1.5
    assert loc_share > 0.97
