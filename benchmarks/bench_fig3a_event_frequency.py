"""Fig. 3a — Event frequency over the longest (24 min) session (§7.2.1).

Characterises the events one shim observes: a per-second time series
per category.  Checks the published shape: location updates plateau at
the 35/s client tickrate and dominate the stream.
"""

from repro.analysis import AsciiTable, format_series
from repro.game import Category, paper_dataset, ten_longest


def characterise():
    dataset = paper_dataset()
    longest = ten_longest(dataset)[0]
    series = {
        cat: longest.frequency_series(cat) for cat in Category.FREQUENT
    }
    return longest, series


def test_fig3a_event_frequency_time_series(benchmark):
    longest, series = benchmark.pedantic(characterise, rounds=1, iterations=1)

    print(f"\nFig. 3a — session {longest.session_id}: "
          f"{len(longest)} events over {longest.duration_minutes:.1f} min "
          f"(paper: ~25K events over 24 min)")
    # Dump one active minute of the series per category (figure data).
    active_start = next(
        i for i, v in enumerate(series[Category.LOCATION]) if v >= 30
    )
    window = slice(active_start, active_start + 30)
    for cat in Category.FREQUENT:
        print(format_series(f"  {cat:8s} (ev/s)", series[cat][window], "{:d}"))

    table = AsciiTable(["category", "events", "share", "max ev/s"],
                       title="per-category totals")
    counts = longest.category_counts()
    for cat in Category.FREQUENT:
        table.row(cat, counts.get(cat, 0),
                  f"{longest.category_share(cat):.3f}",
                  longest.max_frequency(cat))
    table.print()

    # Shape: stable location plateau at the client tickrate; location
    # is by far the most frequent event (paper: ~99.3%, ours ~98-99%).
    assert max(series[Category.LOCATION]) == 35
    assert longest.category_share(Category.LOCATION) > 0.97
    assert 20_000 <= len(longest) <= 30_000
    assert 22.0 <= longest.duration_minutes <= 24.5
