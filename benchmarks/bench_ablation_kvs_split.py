"""Ablation — the per-player per-asset KVS split (§6 optimisation i).

The paper's motivation: "when the smart contract maps the player (as
key) with all his assets (as value) … Fabric will reject the latter
transaction", serialising event validation.  This bench runs the same
five-lane closed-loop workload against both KVS layouts:

* **split** (one key per player-asset pair): different-asset updates are
  mutually exclusive, share blocks, and commit concurrently;
* **monolithic** (one key per player): every update touches the same
  key, so with multi-transaction blocks the block-level lock rejects all
  but the first — the shim must retry, and validation serialises.
"""

from helpers import ClosedLoopDriver
from repro.analysis import AsciiTable
from repro.blockchain import FabricConfig, TxValidationCode
from repro.core import DoomContract, GameSession, ShimConfig
from repro.game import DoomMap
from repro.simnet import INTERNET_US

PEERS = 16
EVENTS_PER_LANE = 20


def run_layout(split: bool):
    game_map = DoomMap.default_map()
    session = GameSession(
        n_peers=PEERS,
        profile=INTERNET_US,
        fabric_config=FabricConfig(max_block_txs=5, mutually_exclusive_blocks=False),
        shim_config=ShimConfig(multithreaded=True, batching=False, split_kvs=split),
        game_map=game_map,
        contract_factory=lambda: DoomContract(
            game_map=game_map, split_kvs=split, strict_pickups=False
        ),
        n_players=1,
        seed=3,
    )
    session.setup()
    start = session.now
    driver = ClosedLoopDriver(session, EVENTS_PER_LANE)
    driver.start()
    session.run_until_idle()
    span_s = (session.now - start) / 1000.0
    stats = session.stats()
    conflicts = sum(
        1 for code in driver.rejorted if code == TxValidationCode.MVCC_READ_CONFLICT
    )
    goodput = stats.accepted_events / span_s if span_s > 0 else 0.0
    session.teardown()
    return goodput, conflicts, stats.events_acked


def test_ablation_kvs_split(benchmark):
    results = benchmark.pedantic(
        lambda: {"split": run_layout(True), "monolithic": run_layout(False)},
        rounds=1, iterations=1,
    )

    table = AsciiTable(
        ["KVS layout", "goodput (valid ev/s)", "MVCC conflicts", "events"],
        title=f"Ablation §6(i): per-player-per-asset KVS split "
              f"({PEERS} peers, block size 5, 5 concurrent asset lanes)",
    )
    for layout, (goodput, conflicts, events) in results.items():
        table.row(layout, f"{goodput:.1f}", conflicts, events)
    table.print()

    split_goodput, split_conflicts, _ = results["split"]
    mono_goodput, mono_conflicts, _ = results["monolithic"]
    # The split layout removes intra-block conflicts entirely…
    assert split_conflicts == 0
    # …the monolithic layout rejects most same-block companions (its
    # clients must retry them, §6)…
    assert mono_conflicts > EVENTS_PER_LANE
    # …so the split layout validates several times more updates/s.
    assert split_goodput > 2.0 * mono_goodput
