"""Cheat-prevention latency (§7.2.2).

Two published anchors:

* LAN, 4 peers: every built-in cheat prevented "in under 34 ms across
  all scenarios" (10 runs per cheat on a 1 Gbps LAN testbed);
* Internet, 32 peers: "prevent cheats in <150 ms … which is well within
  the latency requirements for online gaming" — the paper's headline.

Cheat-prevention latency is the duration between the offending event
reaching the shim and the failure notification for it.
"""

from helpers import all_opts_fabric
from repro.analysis import AsciiTable
from repro.core import CheatInjector, GameSession, relevant_cheats
from repro.simnet import INTERNET_US, LAN_1GBPS

RUNS_PER_CHEAT = 10


def run_config(n_peers, profile, runs=RUNS_PER_CHEAT, seeds=range(1, 100)):
    """Inject every relevant cheat ``runs`` times; returns latencies."""
    latencies = {cheat.code: [] for cheat in relevant_cheats()}
    run_count = 0
    for seed in seeds:
        if run_count >= runs:
            break
        session = GameSession(
            n_peers=n_peers, profile=profile, fabric_config=all_opts_fabric(),
            n_players=min(4, n_peers), seed=seed,
        )
        session.setup()
        injector = CheatInjector(session)
        for result in injector.run_all_relevant():
            assert result.prevented, result.cheat.code
            latencies[result.cheat.code].append(result.prevention_latency_ms)
        session.teardown()
        run_count += 1
    return latencies


def test_cheat_prevention_latency_lan_4_peers(benchmark):
    latencies = benchmark.pedantic(
        lambda: run_config(4, LAN_1GBPS), rounds=1, iterations=1
    )
    table = AsciiTable(
        ["cheat", "avg (ms)", "max (ms)", "runs"],
        title="Cheat prevention — 4 peers, 1 Gbps LAN (paper: <34 ms)",
    )
    for code, values in latencies.items():
        table.row(code, f"{sum(values) / len(values):.1f}",
                  f"{max(values):.1f}", len(values))
    table.print()
    worst = max(v for values in latencies.values() for v in values)
    print(f"worst case over all scenarios: {worst:.1f} ms")
    assert worst < 34.0


def test_cheat_prevention_latency_internet_32_peers(benchmark):
    latencies = benchmark.pedantic(
        lambda: run_config(32, INTERNET_US, runs=3), rounds=1, iterations=1
    )
    table = AsciiTable(
        ["cheat", "avg (ms)", "max (ms)"],
        title="Cheat prevention — 32 peers across the Internet "
              "(paper headline: <150 ms)",
    )
    worst = 0.0
    for code, values in latencies.items():
        table.row(code, f"{sum(values) / len(values):.1f}", f"{max(values):.1f}")
        worst = max(worst, max(values))
    table.print()
    print(f"worst case: {worst:.1f} ms")
    # The headline claim: real-time prevention for a 32-peer room.
    avg_all = sum(v for vs in latencies.values() for v in vs) / sum(
        len(vs) for vs in latencies.values()
    )
    assert avg_all < 150.0
    assert worst < 250.0  # and no scenario strays into unplayable land
