"""Robustness under chaos: goodput and convergence across fault mixes.

The paper's robustness claim (§7.2.4(3)) is that validation survives
faulty minorities.  The chaos harness generalises the experiment: the
same seeded workload is driven through every catalog fault mix, and we
report committed-VALID goodput, timeout fraction and the transport-level
fault counters — with every safety and liveness invariant checked on
every run.
"""

from repro.analysis import AsciiTable
from repro.chaos import get_scenario, run_scenario

SEED = 42
SCENARIOS = (
    "baseline",
    "message-storm",
    "churn",
    "partition",
    "orderer-failover",
    "ddos",
    "churn-partition-ddos",
)


def run_grid():
    results = {}
    for name in SCENARIOS:
        results[name] = run_scenario(name, seed=SEED)
    return results


def test_chaos_robustness(benchmark):
    results = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    table = AsciiTable(
        ["scenario", "faults", "valid", "timeouts", "goodput/s",
         "drops", "dups", "invariants"],
        title=f"Chaos robustness grid (seed {SEED})",
    )
    for name, result in results.items():
        duration_s = get_scenario(name).duration_ms / 1000.0
        valid = result.workload_summary.get("VALID", 0)
        timeouts = result.workload_summary.get("TIMEOUT", 0)
        stats = result.network_stats
        table.row(
            name,
            result.faults_applied,
            valid,
            timeouts,
            f"{valid / duration_s:.1f}",
            stats["messages_dropped"],
            stats["messages_duplicated"],
            "green" if result.ok else f"{len(result.violations)} VIOLATIONS",
        )
    table.print()

    for name, result in results.items():
        assert result.ok, (name, [v.describe() for v in result.violations])
        assert result.probe_codes == ["VALID", "VALID", "VALID"], name

    # Chaos costs goodput but never correctness: the kitchen-sink mix
    # still commits a substantial share of the calm baseline's traffic.
    baseline = results["baseline"].workload_summary.get("VALID", 0)
    worst = results["churn-partition-ddos"].workload_summary.get("VALID", 0)
    assert worst > 0.5 * baseline, (worst, baseline)
