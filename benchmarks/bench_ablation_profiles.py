"""Ablation — deployment latency profiles.

The paper evaluates on an intra-continental deployment and remarks that
"inter-continental online FPS gameplay is rare due to increased
latencies" (§7.2.3).  This bench quantifies the claim on our substrate:
the same 16-peer all-optimisations pipeline on a 1 Gbps LAN, across the
paper's three US regions, and across four continents.
"""

from helpers import all_opts_fabric, measure_validation_latency
from repro.analysis import AsciiTable
from repro.core import ShimConfig
from repro.simnet import INTERCONTINENTAL, INTERNET_US, LAN_1GBPS

PEERS = 16


def run_profiles():
    shim_config = ShimConfig(multithreaded=True, batching=False)
    fabric = all_opts_fabric()
    return {
        profile.name: measure_validation_latency(
            PEERS, fabric, shim_config, events_per_lane=20, profile=profile
        )
        for profile in (LAN_1GBPS, INTERNET_US, INTERCONTINENTAL)
    }


def test_ablation_latency_profiles(benchmark):
    results = benchmark.pedantic(run_profiles, rounds=1, iterations=1)

    table = AsciiTable(
        ["profile", "avg validation latency (ms)"],
        title=f"Ablation: deployment profile ({PEERS} peers, all opts)",
    )
    for name, latency in results.items():
        table.row(name, f"{latency:.0f}")
    table.print()

    lan = results["lan-1gbps"]
    us = results["internet-us"]
    world = results["intercontinental"]
    # Strict ordering, with intercontinental clearly past comfortable
    # FPS latencies relative to the intra-US deployment.
    assert lan < us < world
    assert world > us * 1.3
    assert lan < 60.0
