"""Ablation — sharding for large rooms (§8(5) future work, implemented).

The paper: "our prototype reports increasing validation latency with
increasing peers … recent advancements [sharding] can help mitigate the
issue and blockchain-based MMORPGs may be feasible in future."

This bench measures what the paper projects: a 64-peer room validated
by one chain vs the same 64 peers split into 2 and 4 shards (each shard
owning a slice of the per-player-per-asset key space).  Latency falls
back to the smaller electorate's curve — the 64-peer room regains the
paper's <150 ms real-time envelope at 4 shards.
"""

from repro.analysis import AsciiTable
from repro.blockchain import FabricConfig, ShardedDeployment
from repro.simnet import INTERNET_US

from conftest import CounterContract  # tests/ is on pythonpath

ROOM = 64
SHARD_COUNTS = (1, 2, 4)
EVENTS_PER_ASSET = 12
N_ASSETS = 5


def measure(n_shards: int) -> float:
    """Five per-asset closed loops, each routed to the shard owning its
    counter's key; average end-to-end validation latency."""
    deployment = ShardedDeployment(
        n_peers=ROOM, n_shards=n_shards, profile=INTERNET_US,
        config=FabricConfig(max_block_txs=5, mutually_exclusive_blocks=True),
        seed=3,
    )
    deployment.install_contract(CounterContract)
    clients = {
        index: shard.create_client(f"client{index}")
        for index, shard in enumerate(deployment.shards)
    }

    lanes = [f"asset{i}" for i in range(N_ASSETS)]
    done = []
    for lane in lanes:
        key = f"ctr/{lane}"
        shard_index = deployment.shard_index_for_key(key)
        clients[shard_index].invoke(
            "counter", "init", (lane,), (key,),
            on_complete=lambda r, l: done.append(l),
        )
    deployment.run_until_idle()

    latencies = []
    sent = {lane: 0 for lane in lanes}

    def loop(lane):
        key = f"ctr/{lane}"
        client = clients[deployment.shard_index_for_key(key)]

        def on_complete(result, latency):
            latencies.append(latency)
            if sent[lane] < EVENTS_PER_ASSET:
                sent[lane] += 1
                client.invoke("counter", "add", (lane, 1), (key,),
                              on_complete=on_complete)

        sent[lane] += 1
        client.invoke("counter", "add", (lane, 1), (key,), on_complete=on_complete)

    for lane in lanes:
        loop(lane)
    deployment.run_until_idle()
    return sum(latencies) / len(latencies)


def run_sweep():
    return {n: measure(n) for n in SHARD_COUNTS}


def test_ablation_sharding(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = AsciiTable(
        ["shards", "peers/shard", "avg validation latency (ms)"],
        title=f"Ablation §8(5): sharding a {ROOM}-peer room",
    )
    for n, latency in results.items():
        table.row(n, ROOM // n, f"{latency:.0f}")
    table.print()

    # Sharding monotonically reduces latency…
    assert results[4] < results[2] < results[1]
    # …and brings the 64-peer room back under the real-time envelope.
    assert results[1] > 150.0
    assert results[4] < 150.0
