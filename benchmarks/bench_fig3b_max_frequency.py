"""Fig. 3b — Maximum event frequency per category across the 10 longest
sessions (§7.2.1).

Checks the published shape: location peaks at ~35/s in every session
(the client tickrate caps it), shoot is the second most frequent, other
categories are sparse.  The implication the paper draws: "our approach
must be able to handle at least 35 events per second per player".
"""

from repro.analysis import AsciiTable
from repro.game import Category, paper_dataset, ten_longest


def characterise():
    top10 = ten_longest(paper_dataset())
    return [(demo.session_id, demo.max_frequencies()) for demo in top10]


def test_fig3b_max_event_frequency(benchmark):
    rows = benchmark.pedantic(characterise, rounds=1, iterations=1)

    table = AsciiTable(
        ["demo", "armor", "health", "location", "shoot", "weapon"],
        title="Fig. 3b — max events/s per category, 10 longest sessions",
    )
    for session_id, freqs in rows:
        table.row(session_id, freqs[Category.ARMOR], freqs[Category.HEALTH],
                  freqs[Category.LOCATION], freqs[Category.SHOOT],
                  freqs[Category.WEAPON])
    table.print()

    for session_id, freqs in rows:
        # Location pinned at the tickrate; the system must sustain 35 ev/s.
        assert freqs[Category.LOCATION] == 35, session_id
        # Shoot is the runner-up; other categories are sparse.
        others = (Category.ARMOR, Category.HEALTH, Category.WEAPON)
        assert freqs[Category.SHOOT] >= max(freqs[c] for c in others), session_id
        assert all(freqs[c] <= 10 for c in others), session_id
