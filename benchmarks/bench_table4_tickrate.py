"""Table 4 — Transaction delays with varying client tickrate and peer
count (§7.2.4(2)).

"We replay Doom traffic from session #9 at higher tickrates and
determine count of event delays for various peer setups."  Replaying at
tickrate X means playing the same traffic back at X/35 speed (the event
mix and sequence structure are the session's; only the clock runs
faster).  Published shape: delays increase with peer count and
tickrate but stay bounded — "even with 32 peers and at tickrate of 90,
we observe just 99 potential delays".
"""

from helpers import validation_window_ms
from repro.analysis import AsciiTable
from repro.core import count_delays
from repro.game import GameEvent, paper_dataset, ten_longest

TICKRATES = (35, 60, 90, 120, 150)
PEER_COUNTS = (1, 2, 4, 8, 16, 32)

#: Table 4 as published (tickrate -> delays for p=1..32); the paper's
#: first row is tickrate 30 (our sessions are native 35).
PAPER_TABLE4 = {
    30: (0, 0, 0, 0, 0, 62),
    60: (0, 0, 0, 0, 33, 85),
    90: (0, 0, 0, 38, 56, 99),
    120: (0, 0, 3, 56, 65, 112),
    150: (0, 5, 15, 66, 73, 121),
}


def compress(events, factor: float):
    """Replay the same traffic at ``factor``× speed."""
    return [
        GameEvent(e.t_ms / factor, e.player, e.etype, e.payload, e.seq)
        for e in events
    ]


def run_table4():
    session9 = ten_longest(paper_dataset())[0]
    windows = {n: validation_window_ms(n) for n in PEER_COUNTS}
    grid = {}
    for tickrate in TICKRATES:
        events = compress(session9.events, tickrate / session9.tickrate)
        grid[tickrate] = tuple(
            count_delays(events, windows[n], batching=True).delayed_events
            for n in PEER_COUNTS
        )
    return grid


def test_table4_tickrate_scaling(benchmark):
    grid = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    table = AsciiTable(
        ["tickrate"] + [f"p={n}" for n in PEER_COUNTS] + ["paper (p=1..32)"],
        title="Table 4 — delays vs client tickrate and peer count",
    )
    for tickrate in TICKRATES:
        paper_row = PAPER_TABLE4.get(30 if tickrate == 35 else tickrate)
        table.row(tickrate, *grid[tickrate],
                  "/".join(str(v) for v in paper_row))
    table.print()

    # Shape 1: delays grow with peer count (small sampling dips allowed).
    for tickrate in TICKRATES:
        row = grid[tickrate]
        for a, b in zip(row, row[1:]):
            assert b >= a - 10, (tickrate, row)
        assert row[-1] >= row[0]
    # Shape 2: delays grow with tickrate at every peer count.
    for i, n in enumerate(PEER_COUNTS):
        column = [grid[t][i] for t in TICKRATES]
        for a, b in zip(column, column[1:]):
            assert b >= a - 10, (n, column)
        assert column[-1] >= column[0]
    # Shape 3: the native-rate single-peer room never misses a window,
    # and even the worst cell stays bounded (paper: 121) — the game
    # proceeds normally at modern tickrates.
    assert grid[35][0] == 0
    assert grid[150][-1] < 300
    # Shape 4: tickrate 90 at 32 peers remains modest (paper: 99).
    assert grid[90][-1] < 150
