"""Table 3 — our approach vs other anti-cheat mechanisms (§7.2.2).

Prints the full capability matrix (adapted from Webb et al.'s survey)
and *live-verifies* the cells our substrates can exercise end-to-end:

* our approach: invalid commands (all ten built-in Doom cheats), replay
  and spoofing (protocol), undo (ledger immutability);
* C/S: the same cheats against the trusted-server baseline;
* lockstep (AS/NEO/SEA family): reveal-mismatch detection, and its
  inability to judge semantic validity (invalid commands pass).

Verified cells are marked with ``*`` in the printout.
"""

from repro.analysis import AsciiTable
from repro.baselines import (
    CHEAT_ROWS,
    CSClient,
    GameServer,
    LockstepGame,
    LockstepPlayer,
    MECHANISMS,
    PREVENTED,
    NOT_PREVENTED,
    matrix_lookup,
    our_approach_matches_cs,
)
from repro.core import CheatInjector, GameSession, PROTOCOL_CHEATS
from repro.game import EventType, GameEvent
from repro.simnet import LAN_1GBPS, Network, Region


def verify_our_approach():
    """Live checks for the 'our-approach' column; returns row->verdict."""
    session = GameSession(n_peers=4, profile=LAN_1GBPS, n_players=4, seed=21)
    session.setup()
    injector = CheatInjector(session)

    verdicts = {}
    game_results = injector.run_all_relevant()
    verdicts["invalid-commands"] = (
        PREVENTED if all(r.prevented for r in game_results) else NOT_PREVENTED
    )
    # "Bug" class: exploiting implementation quirks to produce an
    # out-of-bounds asset (here: overflowing the ammo cap via pickups is
    # clamped, and forging state directly is rejected).
    verdicts["bug"] = verdicts["invalid-commands"]

    protocol = [injector.run(cheat) for cheat in PROTOCOL_CHEATS]
    verdicts["spoofing-replay"] = (
        PREVENTED if all(r.prevented for r in protocol) else NOT_PREVENTED
    )

    # Undo: rewriting a committed transaction breaks every hash link —
    # the append-only ledger makes retroactive edits evident.
    ledger = session.chain.peers[0].ledger
    assert ledger.validate_chain()
    victim = ledger.block(1).transactions[0]
    object.__setattr__(victim.proposal, "args", ({"forged": True},))
    verdicts["undo"] = PREVENTED if not ledger.validate_chain() else NOT_PREVENTED
    session.teardown()
    return verdicts


def verify_cs():
    """Live checks for the C/S column (same cheats, trusted server)."""
    net = Network(profile=LAN_1GBPS, seed=22)
    server = net.register(GameServer())
    server.add_player("p1")
    client = net.register(CSClient("c1", Region.LAN, server))
    # Invalid command: shooting an empty magazine's worth.
    client.send_event(GameEvent(0.0, "p1", EventType.SHOOT, {"count": 500}, 1))
    net.run_until_idle()
    return {
        "invalid-commands": PREVENTED if client.rejected == 1 else NOT_PREVENTED,
        "bug": PREVENTED if client.rejected == 1 else NOT_PREVENTED,
    }


def verify_lockstep():
    """Lockstep detects equivocation but not semantic cheats."""
    net = Network(profile=LAN_1GBPS, seed=23)
    players = [
        net.register(LockstepPlayer(f"lp{i}", Region.LAN, lie=(i == 0)))
        for i in range(3)
    ]
    game = LockstepGame(players, rounds=1)
    game.run(net)
    caught = any(("lp0" == cheater) for _, cheater in players[1].cheaters_detected)

    # Semantic cheat: a player commits honestly to an *illegal* move;
    # lockstep agrees on it happily (no rule validation).
    net2 = Network(profile=LAN_1GBPS, seed=24)
    players2 = [
        net2.register(LockstepPlayer(
            f"lq{i}", Region.LAN,
            move_source=(lambda r: "shoot-with-0-ammo") if i == 0 else None,
        ))
        for i in range(3)
    ]
    game2 = LockstepGame(players2, rounds=1)
    game2.run(net2)
    illegal_accepted = (
        players2[1].completed_rounds[1]["lq0"] == "shoot-with-0-ammo"
    )
    return {
        "equivocation-detected": caught,
        "invalid-commands": NOT_PREVENTED if illegal_accepted else PREVENTED,
    }


def run_table3():
    return verify_our_approach(), verify_cs(), verify_lockstep()


def test_table3_cheat_matrix(benchmark):
    ours, cs, lockstep = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    verified = {("our-approach", row): v for row, v in ours.items()}
    verified.update({("c/s", row): v for row, v in cs.items()})
    verified[("neo/sea", "invalid-commands")] = lockstep["invalid-commands"]

    table = AsciiTable(
        ["cheat"] + list(MECHANISMS),
        title="Table 3 — cheat coverage per mechanism "
              "(* = verified by live simulation)",
    )
    for row in CHEAT_ROWS:
        cells = []
        for mechanism in MECHANISMS:
            value = matrix_lookup(row.key, mechanism)
            mark = "*" if (mechanism, row.key) in verified else ""
            cells.append(value + mark)
        table.row(row.label[:40], *cells)
    table.print()

    # Every live verification must agree with the published cell.
    for (mechanism, row_key), verdict in verified.items():
        assert verdict == matrix_lookup(row_key, mechanism), (mechanism, row_key)
    # Lockstep detected the equivocation (its own design goal)…
    assert lockstep["equivocation-detected"]
    # …and the paper's parity claim holds: our approach does no worse
    # than C/S on any row.
    assert our_approach_matches_cs()
